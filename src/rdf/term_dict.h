// TermDict: a lock-free-reader view of the rdf_value$ dictionary.
//
// The snapshot store's readers must resolve constants (Term → VALUE_ID)
// and materialize result terms (VALUE_ID → Term) without touching the
// storage-layer indexes the writer is concurrently mutating. rdf_value$
// is append-only (values are never deleted, even on model drop), so a
// single-writer dictionary that ingests the new rows at each publish
// and exposes open-addressing tables published by release-store gives
// readers exact ValueStore::Lookup/GetTerm semantics with zero locks:
//
//   * entries live in chunked arrays with stable addresses (never
//     moved, never freed before the dict itself);
//   * each hash table is an array of atomic slots holding entry
//     indexes; the writer fills the entry, then release-stores the
//     slot, so a reader's acquire-load of the slot sees a complete
//     entry;
//   * growth builds a fresh table offline and publishes it with a
//     release-store of the table pointer; superseded tables are parked
//     in a writer-owned graveyard (geometric growth bounds the waste)
//     so no reader can ever touch freed memory.
//
// Long literals are deduplicated by fingerprint in rdf_value$, but the
// dict keys entries by the full Term, so Lookup equality matches
// ValueStore::Lookup including its full-text collision check. Blank
// nodes are model-scoped and live in their own (model, label) table.
//
// Lexical forms are not stored per entry: each Ingest batch sorts its
// new strings and packs them into a front-coded block pack (shared
// prefix + suffix, see rdf/codec.h), and entries carry (pack, slot)
// references plus the term's 64-bit hash. Probes reject on the hash
// and materialize a candidate's text only on a hash match, so the
// lazy decode sits entirely behind the existing lookup API. Packs are
// writer-owned, immutable once built, and published before any entry
// referencing them, so readers may decode them freely.

#ifndef RDFDB_RDF_TERM_DICT_H_
#define RDFDB_RDF_TERM_DICT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/codec.h"
#include "rdf/term.h"
#include "rdf/value_store.h"

namespace rdfdb::rdf {

/// Single-writer, lock-free-reader term dictionary. The writer (the
/// snapshot store's publish path) calls Ingest; readers call the const
/// lookups concurrently with it.
class TermDict {
 public:
  TermDict();
  ~TermDict();
  TermDict(const TermDict&) = delete;
  TermDict& operator=(const TermDict&) = delete;

  /// Writer: absorb every rdf_value$ row appended since the previous
  /// call. Idempotent when nothing changed.
  Status Ingest(const ValueStore& values);

  /// VALUE_ID of a non-blank term; nullopt if never stored. Equality is
  /// full-term (ValueStore::Lookup semantics, including the long-literal
  /// full-text check).
  std::optional<ValueId> Lookup(const Term& term) const;

  /// VALUE_ID of a model-scoped blank node.
  std::optional<ValueId> LookupBlank(int64_t model_id,
                                     const std::string& label) const;

  /// Reconstruct the term stored under `value_id` (ValueStore::GetTerm
  /// semantics, including its NotFound message).
  Result<Term> TermForValueId(ValueId value_id) const;

  /// Entries ingested so far.
  size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Approximate heap bytes: entry chunks, per-entry string storage
  /// (accumulated at ingest, so this is O(tables) not O(entries)), the
  /// three live hash tables, and the graveyard of superseded tables.
  /// Writer context only (walks writer-owned bookkeeping).
  size_t ApproxBytes() const;

 private:
  struct Entry {
    ValueId id = 0;
    uint64_t term_hash = 0;  ///< Term::Hash(); probes reject on this
    /// Lexical bytes live front-coded in a shared pack; the entry only
    /// references its slot. Immutable once the entry is published.
    const codec::FrontCodedPack* pack = nullptr;
    uint32_t pack_slot = 0;
    TermKind kind = TermKind::kUri;
    std::string datatype;   ///< typed literals only
    std::string language;   ///< language-tagged literals only
    int64_t bn_model = 0;   ///< blank nodes only
    std::string bn_label;   ///< blank nodes only (original label)
    bool is_blank = false;
  };

  /// Rebuild the full Term from an entry (front-coded text + the
  /// factory the ingest path used).
  Term MaterializeTerm(const Entry& entry) const;

  // Chunked entry spine: stable addresses, lock-free append.
  static constexpr size_t kChunkShift = 12;  // 4096 entries per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kMaxChunks = 1 << 16;  // 256M entries
  using Chunk = std::array<Entry, kChunkSize>;

  /// Open-addressing table of entry indexes (+1; 0 = empty slot).
  struct HashTable {
    explicit HashTable(size_t capacity);
    std::vector<std::atomic<uint64_t>> slots;
    size_t mask;
    size_t count = 0;  ///< writer-side occupancy
  };

  const Entry& EntryAt(size_t index) const {
    return (*chunks_[index >> kChunkShift].load(
        std::memory_order_acquire))[index & (kChunkSize - 1)];
  }

  enum class TableKind { kTerm, kId, kBlank };

  /// Writer: append a fully-built entry; returns its index.
  size_t AppendEntry(Entry entry);

  /// Writer: insert `entry_index` into `table`, growing (build offline,
  /// release-publish, park the old table) when past 70% load.
  void TableInsert(std::atomic<HashTable*>* table, TableKind kind,
                   size_t entry_index);

  /// The probe key an entry carries in a given table.
  uint64_t KeyFor(TableKind kind, const Entry& entry) const;

  static uint64_t Mix(uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }
  static uint64_t BlankKey(int64_t model_id, const std::string& label);

  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<size_t> count_{0};

  std::atomic<HashTable*> term_table_;  ///< non-blank terms, key Term::Hash
  std::atomic<HashTable*> id_table_;    ///< all entries, key VALUE_ID
  std::atomic<HashTable*> bn_table_;    ///< blank nodes, key (model, label)

  /// Superseded tables, kept alive until the dict dies so in-flight
  /// readers stay safe without per-table reclamation.
  std::vector<std::unique_ptr<HashTable>> graveyard_;

  /// Front-coded lexical packs, one per Ingest batch with new rows.
  /// Stable addresses (entries hold raw pointers); never freed before
  /// the dict itself.
  std::vector<std::unique_ptr<codec::FrontCodedPack>> packs_;
  size_t pack_bytes_ = 0;  ///< cumulative pack heap bytes

  size_t ingested_rows_ = 0;  ///< rdf_value$ rows absorbed so far
  size_t entry_string_bytes_ = 0;  ///< string payload across all entries
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_TERM_DICT_H_
