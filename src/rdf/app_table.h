// ApplicationTable: a user table holding SDO_RDF_TRIPLE_S objects.
//
// Mirrors the paper's usage:
//   CREATE TABLE ciadata (id NUMBER, triple SDO_RDF_TRIPLE_S);
//   INSERT INTO ciadata VALUES (1, SDO_RDF_TRIPLE_S('cia', ...));
// plus §7.2's function-based indexes:
//   CREATE INDEX up5m_sub_fbidx ON uniprot5m (triple.GET_SUBJECT());

#ifndef RDFDB_RDF_APP_TABLE_H_
#define RDFDB_RDF_APP_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/rdf_store.h"
#include "rdf/triple.h"

namespace rdfdb::rdf {

/// A user application table with an ID column and an SDO_RDF_TRIPLE_S
/// column (stored as its five reference IDs).
class ApplicationTable {
 public:
  /// Create the table under `schema` inside the store's database.
  static Result<ApplicationTable> Create(RdfStore* store,
                                         const std::string& schema,
                                         const std::string& table_name);

  /// Attach to an existing table previously made by Create.
  static Result<ApplicationTable> Attach(RdfStore* store,
                                         const std::string& schema,
                                         const std::string& table_name);

  /// Append a row.
  Status Insert(int64_t id, const SdoRdfTripleS& triple);

  /// Number of rows.
  size_t row_count() const;

  // ---- Function-based indexes (§7.2) ----------------------------------
  //
  // Each index evaluates the member function against the central schema
  // at indexing time — exactly what Oracle's function-based indexes do.

  Status CreateSubjectIndex();   ///< ON (triple.GET_SUBJECT())
  Status CreatePropertyIndex();  ///< ON (triple.GET_PROPERTY())
  Status CreateObjectIndex();    ///< ON (TO_CHAR(triple.GET_OBJECT()))

  Status DropSubjectIndex();
  Status DropPropertyIndex();
  Status DropObjectIndex();
  bool HasSubjectIndex() const;

  // ---- Queries ---------------------------------------------------------

  /// WHERE triple.GET_SUBJECT() = :text. Uses the function-based index
  /// when present; otherwise falls back to a full scan that evaluates the
  /// member function per row (the un-indexed plan of §7.2).
  std::vector<SdoRdfTripleS> FindBySubject(const std::string& text) const;

  /// WHERE triple.GET_PROPERTY() = :text.
  std::vector<SdoRdfTripleS> FindByProperty(const std::string& text) const;

  /// WHERE TO_CHAR(triple.GET_OBJECT()) = :text.
  std::vector<SdoRdfTripleS> FindByObject(const std::string& text) const;

  /// Visit all rows as (id, triple) pairs.
  void Scan(const std::function<bool(int64_t, const SdoRdfTripleS&)>& fn)
      const;

  const std::string& table_name() const { return table_name_; }
  const storage::Table& table() const { return *table_; }

 private:
  ApplicationTable(RdfStore* store, storage::Table* table, std::string schema,
                   std::string table_name);

  SdoRdfTripleS RowToTriple(const storage::Row& row) const;
  storage::KeyExtractor TextExtractor(size_t id_column,
                                      std::string description) const;
  std::vector<SdoRdfTripleS> FindByText(const std::string& index_name,
                                        size_t id_column,
                                        const std::string& text) const;

  RdfStore* store_;
  storage::Table* table_;
  std::string schema_;
  std::string table_name_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_APP_TABLE_H_
