#include "rdf/reification.h"

#include "common/string_util.h"
#include "dburi/dburi.h"

namespace rdfdb::rdf {

std::string DBUriForLink(LinkId link_id, const std::string& db_name) {
  return "/" + db_name + "/MDSYS/RDF_LINK$/ROW[LINK_ID=" +
         std::to_string(link_id) + "]";
}

std::optional<LinkId> LinkIdFromDBUri(const std::string& uri) {
  auto parsed = dburi::Parse(uri);
  if (!parsed.ok()) return std::nullopt;
  const dburi::DBUri& u = *parsed;
  if (ToUpper(u.schema) != "MDSYS" || ToUpper(u.table) != "RDF_LINK$" ||
      ToUpper(u.key_column) != "LINK_ID" || !u.target_column.empty()) {
    return std::nullopt;
  }
  int64_t link_id;
  if (!ParseInt64(u.key_value, &link_id)) return std::nullopt;
  return link_id;
}

bool IsReificationUri(const std::string& uri) {
  return LinkIdFromDBUri(uri).has_value();
}

}  // namespace rdfdb::rdf
