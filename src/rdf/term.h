// RDF term model: URIs, blank nodes, and (typed / language-tagged /
// long) literals — the value kinds the paper's rdf_value$ table stores
// with VALUE_TYPE codes UR, BN, PL, PL@, TL, PLL, TLL.

#ifndef RDFDB_RDF_TERM_H_
#define RDFDB_RDF_TERM_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::rdf {

/// Threshold above which a literal becomes a long literal stored in the
/// LONG_VALUE CLOB column ("long-literals are text values that exceed
/// 4000 characters").
inline constexpr size_t kLongLiteralThreshold = 4000;

/// Term kinds, one per VALUE_TYPE code in rdf_value$.
enum class TermKind {
  kUri,               ///< "UR"
  kBlankNode,         ///< "BN"
  kPlainLiteral,      ///< "PL"
  kPlainLiteralLang,  ///< "PL@"
  kTypedLiteral,      ///< "TL"
  kPlainLongLiteral,  ///< "PLL"
  kTypedLongLiteral,  ///< "TLL"
};

/// One RDF term. Immutable value type.
class Term {
 public:
  Term() = default;

  /// URI reference, e.g. "http://www.us.gov#files".
  static Term Uri(std::string uri);

  /// Blank node with label (no "_:" prefix), e.g. "anyname001".
  static Term BlankNode(std::string label);

  /// Plain literal; becomes a long literal automatically past the
  /// 4000-char threshold.
  static Term PlainLiteral(std::string text);

  /// Plain literal with a language tag ("chat"@fr).
  static Term PlainLiteralLang(std::string text, std::string language);

  /// Typed literal ("25"^^xsd:int); becomes a typed long literal past the
  /// threshold.
  static Term TypedLiteral(std::string text, std::string datatype_uri);

  TermKind kind() const { return kind_; }

  bool is_uri() const { return kind_ == TermKind::kUri; }
  bool is_blank() const { return kind_ == TermKind::kBlankNode; }
  bool is_literal() const { return !is_uri() && !is_blank(); }
  bool is_long_literal() const {
    return kind_ == TermKind::kPlainLongLiteral ||
           kind_ == TermKind::kTypedLongLiteral;
  }
  bool is_typed_literal() const {
    return kind_ == TermKind::kTypedLiteral ||
           kind_ == TermKind::kTypedLongLiteral;
  }

  /// URI text, blank label, or literal text.
  const std::string& lexical() const { return lexical_; }

  /// Language tag (empty unless kPlainLiteralLang).
  const std::string& language() const { return language_; }

  /// Datatype URI (empty unless typed).
  const std::string& datatype() const { return datatype_; }

  /// VALUE_TYPE code as stored in rdf_value$: UR, BN, PL, PL@, TL, PLL,
  /// TLL.
  const char* TypeCode() const;

  /// N-Triples serialization: <uri>, _:label, "text"@lang, "text"^^<dt>.
  std::string ToNTriples() const;

  /// Human-readable form used by GET_SUBJECT()/GET_OBJECT() result
  /// strings: URI and blank nodes render bare, literals render their text.
  std::string ToDisplayString() const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Hash consistent with operator==.
  uint64_t Hash() const;

 private:
  TermKind kind_ = TermKind::kUri;
  std::string lexical_;
  std::string language_;
  std::string datatype_;
};

/// Parse an API-level term string as accepted by the paper's
/// SDO_RDF_TRIPLE_S constructors:
///   * "_:label"           -> blank node
///   * '"text"'            -> plain literal (quoted)
///   * '"text"@lang'       -> language-tagged literal
///   * '"text"^^<dturi>'   -> typed literal
///   * '<uri>' or bare URI -> URI (anything with a scheme-ish prefix)
///   * anything else       -> plain literal (the paper's example inserts
///                            the object 'bombing' unquoted)
Result<Term> ParseApiTerm(const std::string& text);

/// Like ParseApiTerm but restricted to subject position (URI or blank
/// node only).
Result<Term> ParseApiSubject(const std::string& text);

/// Like ParseApiTerm but restricted to predicate position (URI only).
Result<Term> ParseApiPredicate(const std::string& text);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_TERM_H_
