// RDF containers (§2 of the paper): Bag / Seq / Alt.
//
// "To describe groups of things in RDF ... a resource called a container
// is used. ... a blank node is typically generated for the container,
// and each member is attached to this node as the object of a triple"
// via the membership properties rdf:_1, rdf:_2, ... The link store
// classifies those properties as LINK_TYPE = RDF_MEMBER.

#ifndef RDFDB_RDF_CONTAINER_H_
#define RDFDB_RDF_CONTAINER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/rdf_store.h"
#include "rdf/term.h"

namespace rdfdb::rdf {

/// Container flavours defined by the RDF vocabulary.
enum class ContainerKind { kBag, kSeq, kAlt };

/// The rdf: class URI for a container kind.
std::string ContainerClassUri(ContainerKind kind);

/// Create a container in `model_name`: a blank node `blank_label` typed
/// with the container class, plus one rdf:_n membership triple per
/// member (1-based, in order). Returns the container term.
Result<Term> CreateContainer(RdfStore* store, const std::string& model_name,
                             ContainerKind kind,
                             const std::string& blank_label,
                             const std::vector<Term>& members);

/// The container's kind, or nullopt if `container` is not typed as a
/// Bag/Seq/Alt in the model.
Result<std::optional<ContainerKind>> GetContainerKind(
    const RdfStore& store, const std::string& model_name,
    const Term& container);

/// Members of a container ordered by their membership index (gaps are
/// skipped, as RDF allows).
Result<std::vector<Term>> ContainerMembers(const RdfStore& store,
                                           const std::string& model_name,
                                           const Term& container);

/// Append one member at the next free rdf:_n index. Returns the index
/// used.
Result<int> AppendContainerMember(RdfStore* store,
                                  const std::string& model_name,
                                  const Term& container, const Term& member);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_CONTAINER_H_
