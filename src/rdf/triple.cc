#include "rdf/triple.h"

#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

Result<SdoRdfTriple> SdoRdfTripleS::GetTriple() const {
  if (store_ == nullptr) return Status::Internal("detached triple object");
  // The storage object already carries the three VALUE_IDs — resolve
  // them directly instead of re-fetching the rdf_link$ row. (This is
  // why §7.1.3 sees the member functions ahead of the flat-table join
  // on larger result sets.)
  SdoRdfTriple triple;
  RDFDB_ASSIGN_OR_RETURN(triple.subject, store_->TextForValueId(rdf_s_id_));
  RDFDB_ASSIGN_OR_RETURN(triple.property,
                         store_->TextForValueId(rdf_p_id_));
  RDFDB_ASSIGN_OR_RETURN(triple.object, store_->TextForValueId(rdf_o_id_));
  return triple;
}

Result<std::string> SdoRdfTripleS::GetSubject() const {
  if (store_ == nullptr) return Status::Internal("detached triple object");
  return store_->TextForValueId(rdf_s_id_);
}

Result<std::string> SdoRdfTripleS::GetProperty() const {
  if (store_ == nullptr) return Status::Internal("detached triple object");
  return store_->TextForValueId(rdf_p_id_);
}

Result<std::string> SdoRdfTripleS::GetObject() const {
  if (store_ == nullptr) return Status::Internal("detached triple object");
  return store_->TextForValueId(rdf_o_id_);
}

}  // namespace rdfdb::rdf
