#include "rdf/codec.h"

namespace rdfdb::rdf::codec {

std::vector<uint32_t> PostingList::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(count_);
  for (Cursor cur(*this); !cur.AtEnd(); cur.Next()) {
    out.push_back(cur.Value());
  }
  return out;
}

std::string FrontCodedPack::Get(uint32_t idx) const {
  std::string out;
  AppendTo(idx, &out);
  return out;
}

void FrontCodedPack::AppendTo(uint32_t idx, std::string* out) const {
  const uint32_t block = idx / kBlockSize;
  const uint32_t within = idx % kBlockSize;
  const uint8_t* p = bytes_.data() + block_offsets_[block];
  uint32_t head_len;
  p = GetVarint32(p, &head_len);
  const char* head = reinterpret_cast<const char*>(p);
  p += head_len;
  if (within == 0) {
    out->append(head, head_len);
    return;
  }
  // Reconstruct members 1..within by splicing suffixes onto the
  // running string. Only the target's prefix matters, so members
  // before it build into a scratch buffer.
  std::string cur(head, head_len);
  for (uint32_t i = 1; i <= within; ++i) {
    uint32_t shared, suffix_len;
    p = GetVarint32(p, &shared);
    p = GetVarint32(p, &suffix_len);
    cur.resize(shared);
    cur.append(reinterpret_cast<const char*>(p), suffix_len);
    p += suffix_len;
  }
  out->append(cur);
}

uint32_t FrontCodedPackBuilder::Add(std::string_view s) {
  const uint32_t idx = pack_.count_;
  if ((idx % FrontCodedPack::kBlockSize) == 0) {
    pack_.block_offsets_.push_back(static_cast<uint32_t>(pack_.bytes_.size()));
    PutVarint32(&pack_.bytes_, static_cast<uint32_t>(s.size()));
    pack_.bytes_.insert(pack_.bytes_.end(), s.begin(), s.end());
  } else {
    size_t shared = 0;
    const size_t limit = std::min(prev_.size(), s.size());
    while (shared < limit && prev_[shared] == s[shared]) ++shared;
    PutVarint32(&pack_.bytes_, static_cast<uint32_t>(shared));
    PutVarint32(&pack_.bytes_, static_cast<uint32_t>(s.size() - shared));
    pack_.bytes_.insert(pack_.bytes_.end(), s.begin() + shared, s.end());
  }
  prev_.assign(s.data(), s.size());
  ++pack_.count_;
  return idx;
}

FrontCodedPack FrontCodedPackBuilder::Build() {
  pack_.bytes_.shrink_to_fit();
  pack_.block_offsets_.shrink_to_fit();
  FrontCodedPack out = std::move(pack_);
  pack_ = FrontCodedPack();
  prev_.clear();
  return out;
}

}  // namespace rdfdb::rdf::codec
