#include "rdf/redo_log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string_view>

#include "common/crc32c.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/active_ops.h"
#include "obs/store_metrics.h"
#include "storage/snapshot.h"

namespace rdfdb::rdf {

namespace {

// Record tags.
constexpr const char* kTagCreateModel = "C";
constexpr const char* kTagDropModel = "X";
constexpr const char* kTagInsert = "I";
constexpr const char* kTagDelete = "D";
constexpr const char* kTagReify = "R";
constexpr const char* kTagAssert = "A";         // about an existing triple
constexpr const char* kTagAssertImplied = "M";  // six-arg constructor

std::string EscapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 >= value.size()) {
      out.push_back(value[i]);
      continue;
    }
    ++i;
    switch (value[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(value[i]);
    }
  }
  return out;
}

std::string CrcHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseCrcHex(std::string_view s, uint32_t* out) {
  if (s.size() != 8) return false;
  uint32_t v = 0;
  for (char c : s) {
    uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = 10u + static_cast<uint32_t>(c - 'a');
    else return false;
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

storage::Env* OrDefault(storage::Env* env) {
  return env != nullptr ? env : storage::Env::Default();
}

/// One framing-intact record: seq verified monotonic by ScanLog, CRC
/// verified, body still escaped.
struct RawRecord {
  uint64_t seq = 0;
  std::string_view body;  ///< escaped tag + fields
  size_t offset = 0;      ///< byte offset of the record's first byte
};

struct ScanOutcome {
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  size_t intact_records = 0;
  bool torn_tail = false;
  uint64_t torn_offset = 0;
};

/// Walk every line of `data`, verifying framing (seq, CRC32C, strict
/// seq continuity). Intact records are handed to `cb` in order; a cb
/// error aborts the scan. An integrity failure on the *final* record
/// is reported as a torn tail; anywhere else it is Corruption with the
/// byte offset.
Result<ScanOutcome> ScanLog(
    const std::string& data,
    const std::function<Status(const RawRecord&)>& cb) {
  // Collect (offset, line) pairs, skipping blank lines, so "final
  // record" is well-defined even with a missing trailing newline.
  std::vector<std::pair<size_t, std::string_view>> lines;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    size_t end = (nl == std::string::npos) ? data.size() : nl;
    if (end > pos) lines.emplace_back(pos, std::string_view(data).substr(pos, end - pos));
    pos = (nl == std::string::npos) ? data.size() : nl + 1;
  }

  ScanOutcome out;
  for (size_t i = 0; i < lines.size(); ++i) {
    const auto& [offset, line] = lines[i];
    const bool is_final = (i + 1 == lines.size());

    auto torn_or_corrupt = [&](const std::string& why) -> Result<ScanOutcome> {
      if (is_final) {
        out.torn_tail = true;
        out.torn_offset = offset;
        return out;
      }
      return Status::Corruption("redo log record at byte offset " +
                                std::to_string(offset) + ": " + why);
    };

    size_t tab1 = line.find('\t');
    size_t tab2 =
        (tab1 == std::string_view::npos) ? std::string_view::npos
                                         : line.find('\t', tab1 + 1);
    if (tab2 == std::string_view::npos) {
      return torn_or_corrupt("missing seq/crc framing");
    }
    uint64_t seq;
    if (!ParseU64(line.substr(0, tab1), &seq)) {
      return torn_or_corrupt("unparseable seq field");
    }
    uint32_t stored_crc;
    if (!ParseCrcHex(line.substr(tab1 + 1, tab2 - tab1 - 1), &stored_crc)) {
      return torn_or_corrupt("unparseable crc field");
    }
    std::string_view body = line.substr(tab2 + 1);
    uint32_t actual_crc = Crc32c(body);
    if (actual_crc != stored_crc) {
      return torn_or_corrupt("CRC32C mismatch (stored " +
                             CrcHex(stored_crc) + ", computed " +
                             CrcHex(actual_crc) + ")");
    }
    // Integrity established: seq gaps beyond this point are hard
    // corruption even on the final record (the bytes are intact, so a
    // gap means lost records, not a torn write).
    if (out.intact_records == 0) {
      out.first_seq = seq;
    } else if (seq != out.last_seq + 1) {
      return Status::Corruption(
          "redo log record at byte offset " + std::to_string(offset) +
          ": seq gap (" + std::to_string(out.last_seq) + " -> " +
          std::to_string(seq) + ")");
    }
    out.last_seq = seq;
    ++out.intact_records;
    RDFDB_RETURN_NOT_OK(cb(RawRecord{seq, body, offset}));
  }
  return out;
}

/// Shared by replay and verify: scan `path` through `opts.env`,
/// applying `apply` to every intact record with seq >= opts.min_seq;
/// fills the framing-level fields of `stats`. `enforce_start_seq` is
/// the recovery-only check that the log begins at or before
/// opts.min_seq (records missing otherwise); standalone verification
/// has no manifest context, so fsck turns it off.
Status ScanLogFile(const std::string& path, const ReplayOptions& opts,
                   bool enforce_start_seq, ReplayStats* stats,
                   const std::function<Status(const RawRecord&)>& apply) {
  storage::Env* env = OrDefault(opts.env);
  if (!env->FileExists(path)) return Status::OK();  // fresh database
  RDFDB_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));

  auto scanned = ScanLog(data, [&](const RawRecord& rec) -> Status {
    if (rec.seq < opts.min_seq) {
      ++stats->stale_skipped;
      return Status::OK();
    }
    return apply(rec);
  });
  if (!scanned.ok()) return scanned.status();

  stats->first_seq = scanned->first_seq;
  stats->last_seq = scanned->last_seq;
  stats->torn_tail = scanned->torn_tail;
  stats->torn_offset = scanned->torn_offset;

  if (enforce_start_seq && scanned->intact_records > 0 &&
      scanned->first_seq > opts.min_seq) {
    return Status::Corruption(
        "redo log " + path + " starts at seq " +
        std::to_string(scanned->first_seq) + " but the manifest covers " +
        "only up to seq " + std::to_string(opts.min_seq) +
        ": records are missing");
  }

  if (scanned->torn_tail && opts.truncate_torn_tail) {
    RDFDB_RETURN_NOT_OK(
        env->TruncateFile(path, scanned->torn_offset));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<RedoLog>> RedoLog::Open(
    const std::string& path, const RedoLogOptions& options) {
  storage::Env* env = OrDefault(options.env);
  auto file = env->NewWritableFile(path, /*truncate=*/false);
  if (!file.ok()) {
    return Status::IOError("cannot open redo log " + path + ": " +
                           file.status().message());
  }
  RedoLogOptions resolved = options;
  resolved.env = env;
  return std::unique_ptr<RedoLog>(
      new RedoLog(path, std::move(*file), resolved));
}

Status RedoLog::Append(const std::vector<std::string>& fields) {
  if (!poisoned_.ok()) return poisoned_;
  std::string body;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) body.push_back('\t');
    body += EscapeField(fields[i]);
  }
  std::string line = std::to_string(next_seq_);
  line.push_back('\t');
  line += CrcHex(Crc32c(body));
  line.push_back('\t');
  line += body;
  line.push_back('\n');

  auto poison = [this](const char* stage, const Status& cause) {
    poisoned_ = Status::IOError("redo log poisoned by failed " +
                                std::string(stage) + ": " +
                                cause.message());
    return poisoned_;
  };

  Status appended = file_->Append(line);
  if (!appended.ok()) return poison("append", appended);
  Status flushed = file_->Flush();
  if (!flushed.ok()) return poison("flush", flushed);
  ++unsynced_records_;
  if (sync_mode_ == SyncMode::kEveryRecord ||
      (sync_mode_ == SyncMode::kBatch &&
       unsynced_records_ >= batch_sync_every_)) {
    Status synced = file_->Sync();
    if (!synced.ok()) return poison("sync", synced);
    unsynced_records_ = 0;
  }
  ++next_seq_;
  return Status::OK();
}

Status RedoLog::Sync() {
  if (!poisoned_.ok()) return poisoned_;
  if (unsynced_records_ == 0) return Status::OK();
  RDFDB_RETURN_NOT_OK(file_->Flush());
  Status synced = file_->Sync();
  if (!synced.ok()) {
    poisoned_ = Status::IOError("redo log poisoned by failed sync: " +
                                synced.message());
    return poisoned_;
  }
  unsynced_records_ = 0;
  return Status::OK();
}

Status RedoLog::LogCreateModel(const std::string& model,
                               const std::string& table,
                               const std::string& column,
                               const std::string& owner) {
  return Append({kTagCreateModel, model, table, column, owner});
}

Status RedoLog::LogDropModel(const std::string& model) {
  return Append({kTagDropModel, model});
}

Status RedoLog::LogInsert(const std::string& model, const std::string& s,
                          const std::string& p, const std::string& o) {
  return Append({kTagInsert, model, s, p, o});
}

Status RedoLog::LogDelete(const std::string& model, const std::string& s,
                          const std::string& p, const std::string& o) {
  return Append({kTagDelete, model, s, p, o});
}

Status RedoLog::LogReify(const std::string& model, const std::string& s,
                         const std::string& p, const std::string& o) {
  return Append({kTagReify, model, s, p, o});
}

Status RedoLog::LogAssert(const std::string& model, const std::string& as,
                          const std::string& ap, const std::string& s,
                          const std::string& p, const std::string& o,
                          bool implied) {
  return Append({implied ? kTagAssertImplied : kTagAssert, model, as, ap,
                 s, p, o});
}

Status RedoLog::Truncate() {
  if (!poisoned_.ok()) return poisoned_;
  Status closed = file_->Close();
  if (!closed.ok()) {
    poisoned_ = closed;
    return poisoned_;
  }
  auto reopened = env_->NewWritableFile(path_, /*truncate=*/true);
  if (!reopened.ok()) {
    poisoned_ = Status::IOError("redo log truncate failed: " +
                                reopened.status().message());
    return poisoned_;
  }
  file_ = std::move(*reopened);
  unsynced_records_ = 0;
  return file_->Sync();
}

std::string ReplayStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "replay: %zu record(s) — %zu model(s) created, %zu dropped, "
                "%zu insert(s), %zu delete(s), %zu reification(s), "
                "%zu assertion(s), %zu stale skipped%s in %.1fms",
                records, models_created, models_dropped, inserts, deletes,
                reifications, assertions, stale_skipped,
                torn_tail ? ", torn tail dropped" : "",
                static_cast<double>(replay_ns) / 1e6);
  return buf;
}

Result<ReplayStats> ReplayRedoLog(const std::string& path, RdfStore* store,
                                  const ReplayOptions& opts) {
  Timer replay_timer;
  obs::TimelineScope replay_span(store->timeline(), "redo_replay", "replay",
                                 /*lane=*/0, path);
  obs::ActiveOpGuard active_op(obs::OpKind::kReplay, path);
  ReplayStats stats;

  auto apply = [&](const RawRecord& rec) -> Status {
    std::vector<std::string> fields;
    for (std::string& field : Split(std::string(rec.body), '\t')) {
      fields.push_back(UnescapeField(field));
    }
    auto bad = [&](const std::string& why) {
      return Status::Corruption(
          "redo log record seq " + std::to_string(rec.seq) +
          " (byte offset " + std::to_string(rec.offset) + "): " + why);
    };
    const std::string& tag = fields[0];
    ++stats.records;
    if (tag == kTagCreateModel) {
      if (fields.size() != 5) return bad("C needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(ModelInfo info,
                             store->CreateRdfModel(fields[1], fields[2],
                                                   fields[3], fields[4]));
      (void)info;
      ++stats.models_created;
    } else if (tag == kTagDropModel) {
      if (fields.size() != 2) return bad("X needs 1 field");
      RDFDB_RETURN_NOT_OK(store->DropRdfModel(fields[1]));
      ++stats.models_dropped;
    } else if (tag == kTagInsert) {
      if (fields.size() != 5) return bad("I needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS triple,
          store->InsertTriple(fields[1], fields[2], fields[3], fields[4]));
      (void)triple;
      ++stats.inserts;
    } else if (tag == kTagDelete) {
      if (fields.size() != 5) return bad("D needs 4 fields");
      RDFDB_RETURN_NOT_OK(
          store->DeleteTriple(fields[1], fields[2], fields[3], fields[4]));
      ++stats.deletes;
    } else if (tag == kTagReify) {
      if (fields.size() != 5) return bad("R needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(
          LinkId base,
          store->GetTripleId(fields[1], fields[2], fields[3], fields[4]));
      RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                             store->ReifyTriple(fields[1], base));
      (void)reif;
      ++stats.reifications;
    } else if (tag == kTagAssert) {
      if (fields.size() != 7) return bad("A needs 6 fields");
      RDFDB_ASSIGN_OR_RETURN(
          LinkId base,
          store->GetTripleId(fields[1], fields[4], fields[5], fields[6]));
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS assertion,
          store->AssertAboutTriple(fields[1], fields[2], fields[3], base));
      (void)assertion;
      ++stats.assertions;
    } else if (tag == kTagAssertImplied) {
      if (fields.size() != 7) return bad("M needs 6 fields");
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS assertion,
          store->AssertImplied(fields[1], fields[2], fields[3], fields[4],
                               fields[5], fields[6]));
      (void)assertion;
      ++stats.assertions;
    } else {
      return bad("unknown record tag '" + tag + "'");
    }
    return Status::OK();
  };

  RDFDB_RETURN_NOT_OK(
      ScanLogFile(path, opts, /*enforce_start_seq=*/true, &stats, apply));

  stats.replay_ns = replay_timer.ElapsedNanos();
  store->metrics()->replay_records->Inc(stats.records);
  store->metrics()->replay_ns->Observe(
      static_cast<uint64_t>(stats.replay_ns));
  if (stats.torn_tail) store->metrics()->replay_torn_tails->Inc();
  if (stats.stale_skipped > 0) {
    store->metrics()->replay_stale_skipped->Inc(stats.stale_skipped);
  }
  if (obs::EventLog* elog = store->event_log()) {
    if (stats.torn_tail) {
      elog->Append(
          "replay", "torn_tail",
          {obs::EventField::Str("path", path),
           obs::EventField::Num("truncated_at",
                                static_cast<int64_t>(stats.torn_offset)),
           obs::EventField::Num("last_seq",
                                static_cast<int64_t>(stats.last_seq))});
    }
    elog->Append(
        "replay", "done",
        {obs::EventField::Str("path", path),
         obs::EventField::Num("records",
                              static_cast<int64_t>(stats.records)),
         obs::EventField::Num("inserts",
                              static_cast<int64_t>(stats.inserts)),
         obs::EventField::Num("stale_skipped",
                              static_cast<int64_t>(stats.stale_skipped)),
         obs::EventField::Num("elapsed_us", stats.replay_ns / 1000)});
  }
  return stats;
}

Result<ReplayStats> VerifyRedoLog(const std::string& path,
                                  const ReplayOptions& opts) {
  ReplayStats stats;
  ReplayOptions read_only = opts;
  read_only.truncate_torn_tail = false;
  // No manifest context here: a log legitimately truncated by a past
  // checkpoint starts at seq > 1, which is not damage. Callers compare
  // stats.first_seq against their manifest themselves (rdfdb_fsck).
  RDFDB_RETURN_NOT_OK(ScanLogFile(path, read_only,
                                  /*enforce_start_seq=*/false, &stats,
                                  [&](const RawRecord&) {
                                    ++stats.records;
                                    return Status::OK();
                                  }));
  return stats;
}

// --- Checkpoint manifest ------------------------------------------------

namespace {

constexpr const char* kManifestHeader = "RDFDB-MANIFEST v1";

std::string EncodeManifestBody(const CheckpointManifest& m) {
  std::string body;
  body += kManifestHeader;
  body += '\n';
  body += "gen " + std::to_string(m.generation) + '\n';
  body += "snapshot " + m.snapshot_file + '\n';
  body += "log_start_seq " + std::to_string(m.log_start_seq) + '\n';
  return body;
}

}  // namespace

Status WriteManifest(const std::string& path, const CheckpointManifest& m,
                     storage::Env* env) {
  env = OrDefault(env);
  std::string body = EncodeManifestBody(m);
  body += "crc " + CrcHex(Crc32c(body)) + '\n';
  const std::string tmp = path + ".tmp";
  RDFDB_ASSIGN_OR_RETURN(std::unique_ptr<storage::WritableFile> file,
                         env->NewWritableFile(tmp, /*truncate=*/true));
  RDFDB_RETURN_NOT_OK(file->Append(body));
  RDFDB_RETURN_NOT_OK(file->Sync());
  RDFDB_RETURN_NOT_OK(file->Close());
  RDFDB_RETURN_NOT_OK(env->RenameFile(tmp, path));
  return env->SyncDir(storage::DirName(path));
}

Result<CheckpointManifest> ReadManifest(const std::string& path,
                                        storage::Env* env) {
  env = OrDefault(env);
  RDFDB_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  auto bad = [&](const std::string& why) {
    return Status::Corruption("manifest " + path + ": " + why);
  };
  // The crc line is the last one; everything before it is checksummed.
  size_t crc_pos = data.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      data[crc_pos - 1] != '\n') {
    return bad("missing crc line");
  }
  std::string body = data.substr(0, crc_pos);
  uint32_t stored_crc;
  std::string crc_line = data.substr(crc_pos + 4);
  while (!crc_line.empty() &&
         (crc_line.back() == '\n' || crc_line.back() == '\r')) {
    crc_line.pop_back();
  }
  if (!ParseCrcHex(crc_line, &stored_crc)) return bad("unparseable crc");
  if (Crc32c(body) != stored_crc) {
    return bad("CRC32C mismatch (stored " + CrcHex(stored_crc) +
               ", computed " + CrcHex(Crc32c(body)) + ")");
  }

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return bad("bad header");
  }
  CheckpointManifest m;
  bool have_gen = false, have_snap = false, have_seq = false;
  while (std::getline(in, line)) {
    if (line.rfind("gen ", 0) == 0) {
      if (!ParseU64(std::string_view(line).substr(4), &m.generation)) {
        return bad("unparseable gen");
      }
      have_gen = true;
    } else if (line.rfind("snapshot ", 0) == 0) {
      m.snapshot_file = line.substr(9);
      have_snap = true;
    } else if (line.rfind("log_start_seq ", 0) == 0) {
      if (!ParseU64(std::string_view(line).substr(14), &m.log_start_seq)) {
        return bad("unparseable log_start_seq");
      }
      have_seq = true;
    } else {
      return bad("unknown manifest line '" + line + "'");
    }
  }
  if (!have_gen || !have_snap || !have_seq) {
    return bad("missing required field");
  }
  if (m.snapshot_file.find('/') != std::string::npos) {
    return bad("snapshot entry must be a bare file name");
  }
  return m;
}

// --- LoggedRdfStore -----------------------------------------------------

std::string LoggedRdfStore::GenerationFileName(
    const std::string& snapshot_path, uint64_t gen) {
  return snapshot_path + ".g" + std::to_string(gen);
}

std::string LoggedRdfStore::ManifestPath(const std::string& snapshot_path) {
  return snapshot_path + ".manifest";
}

Result<std::unique_ptr<LoggedRdfStore>> LoggedRdfStore::Open(
    const std::string& snapshot_path, const std::string& log_path,
    const LoggedStoreOptions& options) {
  storage::Env* env = OrDefault(options.env);
  const std::string manifest_path = ManifestPath(snapshot_path);

  uint64_t generation = 0;
  uint64_t min_seq = 1;
  std::string snapshot_to_load;
  if (env->FileExists(manifest_path)) {
    RDFDB_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                           ReadManifest(manifest_path, env));
    generation = manifest.generation;
    min_seq = manifest.log_start_seq;
    if (generation > 0) {
      snapshot_to_load = storage::DirName(snapshot_path) + "/" +
                         manifest.snapshot_file;
    }
  } else if (env->FileExists(snapshot_path)) {
    // Legacy single-file layout (no manifest yet): the bare snapshot
    // plus the full log.
    snapshot_to_load = snapshot_path;
  }

  std::unique_ptr<RdfStore> store;
  if (snapshot_to_load.empty()) {
    store = std::make_unique<RdfStore>();
  } else {
    RDFDB_ASSIGN_OR_RETURN(store, RdfStore::Open(snapshot_to_load, env));
  }

  // Replay stats land in the store's metrics registry (ReplayRedoLog
  // emits them), so recovery is observable after the fact.
  ReplayOptions replay_opts;
  replay_opts.min_seq = min_seq;
  replay_opts.env = env;
  RDFDB_ASSIGN_OR_RETURN(ReplayStats replayed,
                         ReplayRedoLog(log_path, store.get(), replay_opts));

  RedoLogOptions log_opts;
  log_opts.sync_mode = options.sync_mode;
  log_opts.env = env;
  log_opts.next_seq = std::max(replayed.last_seq + 1, min_seq);
  RDFDB_ASSIGN_OR_RETURN(std::unique_ptr<RedoLog> log,
                         RedoLog::Open(log_path, log_opts));

  store->metrics()->recovery_opens->Inc();
  if (obs::EventLog* elog = store->event_log()) {
    elog->Append(
        "recovery", "open",
        {obs::EventField::Str("snapshot", snapshot_to_load),
         obs::EventField::Num("generation",
                              static_cast<int64_t>(generation)),
         obs::EventField::Num("replayed",
                              static_cast<int64_t>(replayed.records)),
         obs::EventField::Num("torn_tail", replayed.torn_tail ? 1 : 0)});
  }

  auto logged = std::unique_ptr<LoggedRdfStore>(new LoggedRdfStore(
      std::move(store), std::move(log), snapshot_path, env, generation));
  logged->recovery_stats_ = replayed;
  return logged;
}

Result<SdoRdfTriple> LoggedRdfStore::TripleTextFor(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow row, store_->links().Get(rdf_t_id));
  SdoRdfTriple out;
  for (auto [value_id, slot] :
       {std::make_pair(row.start_node_id, &out.subject),
        std::make_pair(row.p_value_id, &out.property),
        std::make_pair(row.end_node_id, &out.object)}) {
    RDFDB_ASSIGN_OR_RETURN(Term term, store_->TermForValueId(value_id));
    if (term.is_blank()) {
      // Serialize the *original* label so replay re-resolves the same
      // model-scoped node.
      auto original = store_->values().LookupBlankLabel(value_id);
      if (!original.has_value()) {
        return Status::Corruption("blank node without rdf_blank_node$ row");
      }
      *slot = "_:" + original->second;
    } else {
      *slot = term.ToNTriples();
    }
  }
  return out;
}

Result<ModelInfo> LoggedRdfStore::CreateRdfModel(
    const std::string& model_name, const std::string& app_table,
    const std::string& app_column, const std::string& owner) {
  RDFDB_ASSIGN_OR_RETURN(
      ModelInfo info,
      store_->CreateRdfModel(model_name, app_table, app_column, owner));
  RDFDB_RETURN_NOT_OK(
      log_->LogCreateModel(model_name, app_table, app_column, owner));
  return info;
}

Status LoggedRdfStore::DropRdfModel(const std::string& model_name) {
  RDFDB_RETURN_NOT_OK(store_->DropRdfModel(model_name));
  return log_->LogDropModel(model_name);
}

Result<SdoRdfTripleS> LoggedRdfStore::InsertTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS triple,
      store_->InsertTriple(model_name, subject, property, object));
  RDFDB_RETURN_NOT_OK(log_->LogInsert(model_name, subject, property,
                                      object));
  return triple;
}

Status LoggedRdfStore::DeleteTriple(const std::string& model_name,
                                    const std::string& subject,
                                    const std::string& property,
                                    const std::string& object) {
  RDFDB_RETURN_NOT_OK(
      store_->DeleteTriple(model_name, subject, property, object));
  return log_->LogDelete(model_name, subject, property, object);
}

Result<SdoRdfTripleS> LoggedRdfStore::ReifyTriple(
    const std::string& model_name, LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTriple base, TripleTextFor(rdf_t_id));
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                         store_->ReifyTriple(model_name, rdf_t_id));
  RDFDB_RETURN_NOT_OK(log_->LogReify(model_name, base.subject,
                                     base.property, base.object));
  return reif;
}

Result<SdoRdfTripleS> LoggedRdfStore::AssertAboutTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTriple base, TripleTextFor(rdf_t_id));
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS assertion,
      store_->AssertAboutTriple(model_name, subject, property, rdf_t_id));
  RDFDB_RETURN_NOT_OK(log_->LogAssert(model_name, subject, property,
                                      base.subject, base.property,
                                      base.object, /*implied=*/false));
  return assertion;
}

Result<SdoRdfTripleS> LoggedRdfStore::AssertImplied(
    const std::string& model_name, const std::string& reif_sub,
    const std::string& reif_prop, const std::string& subject,
    const std::string& property, const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS assertion,
      store_->AssertImplied(model_name, reif_sub, reif_prop, subject,
                            property, object));
  RDFDB_RETURN_NOT_OK(log_->LogAssert(model_name, reif_sub, reif_prop,
                                      subject, property, object,
                                      /*implied=*/true));
  return assertion;
}

Status LoggedRdfStore::Checkpoint() {
  obs::ActiveOpGuard active_op(obs::OpKind::kCheckpoint, snapshot_path_);
  // 1. Snapshot the current state into the next generation (atomic:
  //    SaveSnapshotToFile writes tmp + fsync + rename + dir fsync).
  const uint64_t next_gen = generation_ + 1;
  const std::string snap_file =
      GenerationFileName(snapshot_path_, next_gen);
  // Capture before Save: every record below this seq is in the store
  // state being snapshotted (single-writer store).
  const uint64_t log_start_seq = log_->next_seq();
  RDFDB_RETURN_NOT_OK(store_->Save(snap_file, env_));

  // 2. Swap the manifest. From this instant recovery uses the new
  //    generation; records below log_start_seq become stale.
  CheckpointManifest manifest;
  manifest.generation = next_gen;
  manifest.snapshot_file = storage::BaseName(snap_file);
  manifest.log_start_seq = log_start_seq;
  RDFDB_RETURN_NOT_OK(
      WriteManifest(ManifestPath(snapshot_path_), manifest, env_));
  const uint64_t prev_gen = generation_;
  generation_ = next_gen;

  // 3. Reclaim: truncate the log (stale records would be skipped by
  //    seq anyway) and drop the superseded snapshot. A crash in here
  //    costs disk space, not correctness.
  RDFDB_RETURN_NOT_OK(log_->Truncate());
  if (prev_gen > 0) {
    (void)env_->RemoveFile(GenerationFileName(snapshot_path_, prev_gen));
  } else if (env_->FileExists(snapshot_path_)) {
    // Legacy bare snapshot superseded by the first manifest.
    (void)env_->RemoveFile(snapshot_path_);
  }
  return Status::OK();
}

}  // namespace rdfdb::rdf
