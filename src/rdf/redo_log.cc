#include "rdf/redo_log.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/store_metrics.h"
#include "storage/snapshot.h"

namespace rdfdb::rdf {

namespace {

// Record tags.
constexpr const char* kTagCreateModel = "C";
constexpr const char* kTagDropModel = "X";
constexpr const char* kTagInsert = "I";
constexpr const char* kTagDelete = "D";
constexpr const char* kTagReify = "R";
constexpr const char* kTagAssert = "A";         // about an existing triple
constexpr const char* kTagAssertImplied = "M";  // six-arg constructor

std::string EscapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 >= value.size()) {
      out.push_back(value[i]);
      continue;
    }
    ++i;
    switch (value[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(value[i]);
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<RedoLog>> RedoLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open redo log " + path);
  }
  return std::unique_ptr<RedoLog>(new RedoLog(path, file));
}

RedoLog::~RedoLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RedoLog::Append(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back('\t');
    line += EscapeField(fields[i]);
  }
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IOError("redo log write failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("redo log flush failed");
  }
  return Status::OK();
}

Status RedoLog::LogCreateModel(const std::string& model,
                               const std::string& table,
                               const std::string& column,
                               const std::string& owner) {
  return Append({kTagCreateModel, model, table, column, owner});
}

Status RedoLog::LogDropModel(const std::string& model) {
  return Append({kTagDropModel, model});
}

Status RedoLog::LogInsert(const std::string& model, const std::string& s,
                          const std::string& p, const std::string& o) {
  return Append({kTagInsert, model, s, p, o});
}

Status RedoLog::LogDelete(const std::string& model, const std::string& s,
                          const std::string& p, const std::string& o) {
  return Append({kTagDelete, model, s, p, o});
}

Status RedoLog::LogReify(const std::string& model, const std::string& s,
                         const std::string& p, const std::string& o) {
  return Append({kTagReify, model, s, p, o});
}

Status RedoLog::LogAssert(const std::string& model, const std::string& as,
                          const std::string& ap, const std::string& s,
                          const std::string& p, const std::string& o,
                          bool implied) {
  return Append({implied ? kTagAssertImplied : kTagAssert, model, as, ap,
                 s, p, o});
}

Status RedoLog::Truncate() {
  std::FILE* reopened = std::freopen(path_.c_str(), "wb", file_);
  if (reopened == nullptr) {
    file_ = nullptr;
    return Status::IOError("redo log truncate failed: " + path_);
  }
  file_ = reopened;
  return Status::OK();
}

std::string ReplayStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "replay: %zu record(s) — %zu model(s) created, %zu dropped, "
                "%zu insert(s), %zu delete(s), %zu reification(s), "
                "%zu assertion(s) in %.1fms",
                records, models_created, models_dropped, inserts, deletes,
                reifications, assertions,
                static_cast<double>(replay_ns) / 1e6);
  return buf;
}

Result<ReplayStats> ReplayRedoLog(const std::string& path, RdfStore* store) {
  Timer replay_timer;
  obs::TimelineScope replay_span(store->timeline(), "redo_replay", "replay",
                                 /*lane=*/0, path);
  std::ifstream in(path);
  if (!in.is_open()) {
    // A missing log is an empty log (fresh database).
    return ReplayStats{};
  }
  ReplayStats stats;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    for (std::string& field : Split(line, '\t')) {
      fields.push_back(UnescapeField(field));
    }
    auto bad = [&](const std::string& why) {
      return Status::Corruption("redo log line " + std::to_string(line_no) +
                                ": " + why);
    };
    const std::string& tag = fields[0];
    ++stats.records;
    if (tag == kTagCreateModel) {
      if (fields.size() != 5) return bad("C needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(ModelInfo info,
                             store->CreateRdfModel(fields[1], fields[2],
                                                   fields[3], fields[4]));
      (void)info;
      ++stats.models_created;
    } else if (tag == kTagDropModel) {
      if (fields.size() != 2) return bad("X needs 1 field");
      RDFDB_RETURN_NOT_OK(store->DropRdfModel(fields[1]));
      ++stats.models_dropped;
    } else if (tag == kTagInsert) {
      if (fields.size() != 5) return bad("I needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS triple,
          store->InsertTriple(fields[1], fields[2], fields[3], fields[4]));
      (void)triple;
      ++stats.inserts;
    } else if (tag == kTagDelete) {
      if (fields.size() != 5) return bad("D needs 4 fields");
      RDFDB_RETURN_NOT_OK(
          store->DeleteTriple(fields[1], fields[2], fields[3], fields[4]));
      ++stats.deletes;
    } else if (tag == kTagReify) {
      if (fields.size() != 5) return bad("R needs 4 fields");
      RDFDB_ASSIGN_OR_RETURN(
          LinkId base,
          store->GetTripleId(fields[1], fields[2], fields[3], fields[4]));
      RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                             store->ReifyTriple(fields[1], base));
      (void)reif;
      ++stats.reifications;
    } else if (tag == kTagAssert) {
      if (fields.size() != 7) return bad("A needs 6 fields");
      RDFDB_ASSIGN_OR_RETURN(
          LinkId base,
          store->GetTripleId(fields[1], fields[4], fields[5], fields[6]));
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS assertion,
          store->AssertAboutTriple(fields[1], fields[2], fields[3], base));
      (void)assertion;
      ++stats.assertions;
    } else if (tag == kTagAssertImplied) {
      if (fields.size() != 7) return bad("M needs 6 fields");
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS assertion,
          store->AssertImplied(fields[1], fields[2], fields[3], fields[4],
                               fields[5], fields[6]));
      (void)assertion;
      ++stats.assertions;
    } else {
      return bad("unknown record tag '" + tag + "'");
    }
  }
  stats.replay_ns = replay_timer.ElapsedNanos();
  store->metrics()->replay_records->Inc(stats.records);
  store->metrics()->replay_ns->Observe(
      static_cast<uint64_t>(stats.replay_ns));
  if (obs::EventLog* elog = store->event_log()) {
    elog->Append(
        "replay", "done",
        {obs::EventField::Str("path", path),
         obs::EventField::Num("records",
                              static_cast<int64_t>(stats.records)),
         obs::EventField::Num("inserts",
                              static_cast<int64_t>(stats.inserts)),
         obs::EventField::Num("elapsed_us", stats.replay_ns / 1000)});
  }
  return stats;
}

Result<std::unique_ptr<LoggedRdfStore>> LoggedRdfStore::Open(
    const std::string& snapshot_path, const std::string& log_path) {
  std::unique_ptr<RdfStore> store;
  std::ifstream probe(snapshot_path, std::ios::binary);
  if (probe.is_open()) {
    probe.close();
    RDFDB_ASSIGN_OR_RETURN(store, RdfStore::Open(snapshot_path));
  } else {
    store = std::make_unique<RdfStore>();
  }
  // Replay stats land in the store's metrics registry (ReplayRedoLog
  // emits them), so recovery is observable after the fact.
  RDFDB_ASSIGN_OR_RETURN(ReplayStats replayed,
                         ReplayRedoLog(log_path, store.get()));
  (void)replayed;
  RDFDB_ASSIGN_OR_RETURN(std::unique_ptr<RedoLog> log,
                         RedoLog::Open(log_path));
  return std::unique_ptr<LoggedRdfStore>(new LoggedRdfStore(
      std::move(store), std::move(log), snapshot_path));
}

Result<SdoRdfTriple> LoggedRdfStore::TripleTextFor(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow row, store_->links().Get(rdf_t_id));
  SdoRdfTriple out;
  for (auto [value_id, slot] :
       {std::make_pair(row.start_node_id, &out.subject),
        std::make_pair(row.p_value_id, &out.property),
        std::make_pair(row.end_node_id, &out.object)}) {
    RDFDB_ASSIGN_OR_RETURN(Term term, store_->TermForValueId(value_id));
    if (term.is_blank()) {
      // Serialize the *original* label so replay re-resolves the same
      // model-scoped node.
      auto original = store_->values().LookupBlankLabel(value_id);
      if (!original.has_value()) {
        return Status::Corruption("blank node without rdf_blank_node$ row");
      }
      *slot = "_:" + original->second;
    } else {
      *slot = term.ToNTriples();
    }
  }
  return out;
}

Result<ModelInfo> LoggedRdfStore::CreateRdfModel(
    const std::string& model_name, const std::string& app_table,
    const std::string& app_column, const std::string& owner) {
  RDFDB_ASSIGN_OR_RETURN(
      ModelInfo info,
      store_->CreateRdfModel(model_name, app_table, app_column, owner));
  RDFDB_RETURN_NOT_OK(
      log_->LogCreateModel(model_name, app_table, app_column, owner));
  return info;
}

Status LoggedRdfStore::DropRdfModel(const std::string& model_name) {
  RDFDB_RETURN_NOT_OK(store_->DropRdfModel(model_name));
  return log_->LogDropModel(model_name);
}

Result<SdoRdfTripleS> LoggedRdfStore::InsertTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS triple,
      store_->InsertTriple(model_name, subject, property, object));
  RDFDB_RETURN_NOT_OK(log_->LogInsert(model_name, subject, property,
                                      object));
  return triple;
}

Status LoggedRdfStore::DeleteTriple(const std::string& model_name,
                                    const std::string& subject,
                                    const std::string& property,
                                    const std::string& object) {
  RDFDB_RETURN_NOT_OK(
      store_->DeleteTriple(model_name, subject, property, object));
  return log_->LogDelete(model_name, subject, property, object);
}

Result<SdoRdfTripleS> LoggedRdfStore::ReifyTriple(
    const std::string& model_name, LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTriple base, TripleTextFor(rdf_t_id));
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                         store_->ReifyTriple(model_name, rdf_t_id));
  RDFDB_RETURN_NOT_OK(log_->LogReify(model_name, base.subject,
                                     base.property, base.object));
  return reif;
}

Result<SdoRdfTripleS> LoggedRdfStore::AssertAboutTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(SdoRdfTriple base, TripleTextFor(rdf_t_id));
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS assertion,
      store_->AssertAboutTriple(model_name, subject, property, rdf_t_id));
  RDFDB_RETURN_NOT_OK(log_->LogAssert(model_name, subject, property,
                                      base.subject, base.property,
                                      base.object, /*implied=*/false));
  return assertion;
}

Result<SdoRdfTripleS> LoggedRdfStore::AssertImplied(
    const std::string& model_name, const std::string& reif_sub,
    const std::string& reif_prop, const std::string& subject,
    const std::string& property, const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS assertion,
      store_->AssertImplied(model_name, reif_sub, reif_prop, subject,
                            property, object));
  RDFDB_RETURN_NOT_OK(log_->LogAssert(model_name, reif_sub, reif_prop,
                                      subject, property, object,
                                      /*implied=*/true));
  return assertion;
}

Status LoggedRdfStore::Checkpoint() {
  RDFDB_RETURN_NOT_OK(store_->Save(snapshot_path_));
  return log_->Truncate();
}

}  // namespace rdfdb::rdf
