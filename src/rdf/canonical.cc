#include "rdf/canonical.h"

#include <cctype>
#include <cstdio>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

namespace {

bool IsIntegerType(const std::string& dt) {
  return dt == kXsdInt || dt == kXsdInteger || dt == kXsdLong ||
         dt == kXsdShort || dt == kXsdByte ||
         dt == std::string(kXsdNs) + "nonNegativeInteger" ||
         dt == std::string(kXsdNs) + "positiveInteger" ||
         dt == std::string(kXsdNs) + "nonPositiveInteger" ||
         dt == std::string(kXsdNs) + "negativeInteger" ||
         dt == std::string(kXsdNs) + "unsignedInt" ||
         dt == std::string(kXsdNs) + "unsignedLong" ||
         dt == std::string(kXsdNs) + "unsignedShort" ||
         dt == std::string(kXsdNs) + "unsignedByte";
}

bool CanonicalizeInteger(const std::string& lexical, std::string* out) {
  std::string s = Trim(lexical);
  if (s.empty()) return false;
  bool negative = false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    i = 1;
  }
  if (i >= s.size()) return false;
  size_t digits_start = i;
  while (i < s.size() && s[i] == '0') ++i;
  size_t first_significant = i;
  while (i < s.size()) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    ++i;
  }
  if (first_significant == digits_start && digits_start == s.size()) {
    return false;  // sign only
  }
  std::string digits = s.substr(first_significant);
  if (digits.empty()) digits = "0";
  *out = (negative && digits != "0") ? "-" + digits : digits;
  return true;
}

bool CanonicalizeDecimal(const std::string& lexical, std::string* out) {
  std::string s = Trim(lexical);
  if (s.empty()) return false;
  std::string sign;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    if (s[0] == '-') sign = "-";
    i = 1;
  }
  std::string int_part, frac_part;
  bool seen_dot = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      (seen_dot ? frac_part : int_part).push_back(c);
    } else {
      return false;
    }
  }
  if (int_part.empty() && frac_part.empty()) return false;
  // Strip leading zeros of the integer part and trailing zeros of the
  // fraction.
  size_t nz = int_part.find_first_not_of('0');
  int_part = nz == std::string::npos ? "0" : int_part.substr(nz);
  size_t last = frac_part.find_last_not_of('0');
  frac_part = last == std::string::npos ? "" : frac_part.substr(0, last + 1);
  std::string body = int_part;
  if (!frac_part.empty()) body += "." + frac_part;
  if (body == "0") sign.clear();
  *out = sign + body;
  return true;
}

bool CanonicalizeDouble(const std::string& lexical, std::string* out) {
  double v;
  if (!ParseDouble(Trim(lexical), &v)) return false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Shorten when a lower precision round-trips.
  for (int prec = 1; prec <= 16; ++prec) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", prec, v);
    double back;
    if (ParseDouble(candidate, &back) && back == v) {
      *out = candidate;
      return true;
    }
  }
  *out = buf;
  return true;
}

bool CanonicalizeBoolean(const std::string& lexical, std::string* out) {
  std::string s = Trim(lexical);
  if (s == "true" || s == "1") {
    *out = "true";
    return true;
  }
  if (s == "false" || s == "0") {
    *out = "false";
    return true;
  }
  return false;
}

}  // namespace

bool IsCanonicalizableDatatype(const std::string& dt) {
  return IsIntegerType(dt) || dt == kXsdDecimal || dt == kXsdDouble ||
         dt == kXsdFloat || dt == kXsdBoolean || dt == kXsdString;
}

Term CanonicalForm(const Term& term) {
  if (!term.is_typed_literal()) return term;
  const std::string& dt = term.datatype();
  std::string canon;
  if (IsIntegerType(dt)) {
    if (CanonicalizeInteger(term.lexical(), &canon)) {
      return Term::TypedLiteral(std::move(canon), dt);
    }
    return term;
  }
  if (dt == kXsdDecimal) {
    if (CanonicalizeDecimal(term.lexical(), &canon)) {
      return Term::TypedLiteral(std::move(canon), dt);
    }
    return term;
  }
  if (dt == kXsdDouble || dt == kXsdFloat) {
    if (CanonicalizeDouble(term.lexical(), &canon)) {
      return Term::TypedLiteral(std::move(canon), dt);
    }
    return term;
  }
  if (dt == kXsdBoolean) {
    if (CanonicalizeBoolean(term.lexical(), &canon)) {
      return Term::TypedLiteral(std::move(canon), dt);
    }
    return term;
  }
  if (dt == kXsdString) {
    // xsd:string literals are value-equal to plain literals.
    return Term::PlainLiteral(term.lexical());
  }
  return term;
}

}  // namespace rdfdb::rdf
