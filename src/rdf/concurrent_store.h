// Thread-safe facade over RdfStore.
//
// The core store is single-writer by design (like most embedded
// engines); this wrapper adds a readers-writer lock so an application
// can serve concurrent lookups while one thread mutates — the usual
// deployment shape for a metadata store. Reads (IS_TRIPLE, IS_REIFIED,
// member-function resolution, stats) take the shared lock; every
// mutation takes the exclusive lock.
//
// For anything not wrapped here, WithReadLock / WithWriteLock run an
// arbitrary callback under the appropriate lock.
//
// This facade is the simple (and slow, under write load) option: a
// bulk load stalls every reader for its whole duration. The lock-free
// alternative is SnapshotRdfStore (rdf/snapshot_store.h), which
// publishes immutable store versions readers pin without any lock;
// this class remains as the differential oracle for its tests.

#ifndef RDFDB_RDF_CONCURRENT_STORE_H_
#define RDFDB_RDF_CONCURRENT_STORE_H_

#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// Readers-writer wrapper. All methods are safe to call from any thread.
class ConcurrentRdfStore {
 public:
  ConcurrentRdfStore() = default;

  // ---- Mutations (exclusive lock) --------------------------------------

  Result<ModelInfo> CreateRdfModel(const std::string& model_name,
                                   const std::string& app_table,
                                   const std::string& app_column,
                                   const std::string& owner = "") {
    std::unique_lock lock(mutex_);
    return store_.CreateRdfModel(model_name, app_table, app_column, owner);
  }

  Status DropRdfModel(const std::string& model_name) {
    std::unique_lock lock(mutex_);
    return store_.DropRdfModel(model_name);
  }

  Result<SdoRdfTripleS> InsertTriple(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object) {
    std::unique_lock lock(mutex_);
    return store_.InsertTriple(model_name, subject, property, object);
  }

  Status DeleteTriple(const std::string& model_name,
                      const std::string& subject,
                      const std::string& property,
                      const std::string& object) {
    std::unique_lock lock(mutex_);
    return store_.DeleteTriple(model_name, subject, property, object);
  }

  Result<SdoRdfTripleS> ReifyTriple(const std::string& model_name,
                                    LinkId rdf_t_id) {
    std::unique_lock lock(mutex_);
    return store_.ReifyTriple(model_name, rdf_t_id);
  }

  Result<SdoRdfTripleS> AssertAboutTriple(const std::string& model_name,
                                          const std::string& subject,
                                          const std::string& property,
                                          LinkId rdf_t_id) {
    std::unique_lock lock(mutex_);
    return store_.AssertAboutTriple(model_name, subject, property,
                                    rdf_t_id);
  }

  Result<SdoRdfTripleS> AssertImplied(const std::string& model_name,
                                      const std::string& reif_sub,
                                      const std::string& reif_prop,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object) {
    std::unique_lock lock(mutex_);
    return store_.AssertImplied(model_name, reif_sub, reif_prop, subject,
                                property, object);
  }

  // ---- Reads (shared lock) ----------------------------------------------
  //
  // Note: every read wrapped here — including IsReified, whose
  // vocabulary-id lookups are plain per-call index probes with no
  // mutable caching — is strictly read-only on the core store, so the
  // shared lock is sufficient from the first call.

  Result<bool> IsTriple(const std::string& model_name,
                        const std::string& subject,
                        const std::string& property,
                        const std::string& object) const {
    std::shared_lock lock(mutex_);
    return store_.IsTriple(model_name, subject, property, object);
  }

  Result<bool> IsReified(const std::string& model_name,
                         const std::string& subject,
                         const std::string& property,
                         const std::string& object) const {
    std::shared_lock lock(mutex_);
    return store_.IsReified(model_name, subject, property, object);
  }

  Result<LinkId> GetTripleId(const std::string& model_name,
                             const std::string& subject,
                             const std::string& property,
                             const std::string& object) const {
    std::shared_lock lock(mutex_);
    return store_.GetTripleId(model_name, subject, property, object);
  }

  Result<SdoRdfTriple> ResolveTriple(LinkId rdf_t_id) const {
    std::shared_lock lock(mutex_);
    return store_.ResolveTriple(rdf_t_id);
  }

  Result<ModelId> GetModelId(const std::string& model_name) const {
    std::shared_lock lock(mutex_);
    return store_.GetModelId(model_name);
  }

  Result<RdfStore::ModelStats> GetModelStats(
      const std::string& model_name,
      const RdfStore::ModelStatsOptions& options = {}) const {
    std::shared_lock lock(mutex_);
    return store_.GetModelStats(model_name, options);
  }

  // ---- Observability -----------------------------------------------------
  //
  // Metric writes inside the store are relaxed atomics, so they are
  // safe under the shared lock; dumps snapshot each instrument with the
  // registry's own mutex. The shared lock here only pins the store
  // alive relative to WithWriteLock callbacks that might rebuild it.

  std::string MetricsText() const {
    std::shared_lock lock(mutex_);
    return store_.metrics_registry().RenderPrometheus();
  }

  std::string MetricsJson() const {
    std::shared_lock lock(mutex_);
    return store_.metrics_registry().RenderJson();
  }

  /// Attach the always-on facilities under the exclusive lock (any null
  /// pointer detaches that facility). The objects must outlive the
  /// store while attached.
  void SetObservability(obs::EventLog* event_log,
                        obs::SlowQueryLog* slow_query_log,
                        obs::Timeline* timeline) {
    std::unique_lock lock(mutex_);
    store_.set_event_log(event_log);
    store_.set_slow_query_log(slow_query_log);
    store_.set_timeline(timeline);
  }

  /// The registry backing this store's instruments (instrument reads
  /// are relaxed atomics; no lock needed to scrape).
  obs::MetricsRegistry& metrics_registry() const {
    return store_.metrics_registry();
  }

  // ---- Escape hatches ----------------------------------------------------

  /// Run `fn` with shared (read) access to the underlying store.
  template <typename Fn>
  auto WithReadLock(Fn&& fn) const -> decltype(fn(std::declval<
                                                  const RdfStore&>())) {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const RdfStore&>(store_));
  }

  /// Run `fn` with exclusive (write) access to the underlying store.
  template <typename Fn>
  auto WithWriteLock(Fn&& fn) -> decltype(fn(std::declval<RdfStore&>())) {
    std::unique_lock lock(mutex_);
    return fn(store_);
  }

 private:
  mutable std::shared_mutex mutex_;
  RdfStore store_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_CONCURRENT_STORE_H_
