#include "rdf/epoch.h"

#include <algorithm>
#include <thread>

namespace rdfdb::rdf {

namespace {

/// Spread threads across the slot array so concurrent pins rarely
/// contend on the same CAS target.
size_t ThreadProbeOffset() {
  static std::atomic<size_t> next{0};
  thread_local size_t offset =
      next.fetch_add(17, std::memory_order_relaxed);
  return offset;
}

}  // namespace

EpochGc::Pin EpochGc::Enter() const {
  const size_t offset = ThreadProbeOffset();
  uint64_t e = epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    for (size_t probe = 0; probe < kSlots; ++probe) {
      const size_t i = (offset + probe) % kSlots;
      uint64_t expected = 0;
      if (!slots_[i].epoch.compare_exchange_strong(
              expected, e, std::memory_order_seq_cst)) {
        continue;
      }
      // Claimed. Re-validate: the writer may have advanced the epoch
      // between our load and the CAS. Updating the slot in place is
      // safe — the writer treats any non-zero slot as pinned, and a
      // transiently old stamp only makes its watermark conservative.
      for (;;) {
        uint64_t cur = epoch_.load(std::memory_order_seq_cst);
        if (cur == e) return Pin(this, i);
        e = cur;
        slots_[i].epoch.store(e, std::memory_order_seq_cst);
      }
    }
    // All slots busy (more than kSlots simultaneous pins): wait for one
    // to free up. Not a lock — progress resumes as soon as any reader
    // unpins.
    std::this_thread::yield();
    e = epoch_.load(std::memory_order_seq_cst);
  }
}

void EpochGc::Retire(std::shared_ptr<const void> obj, uint64_t retire_epoch,
                     size_t bytes) {
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.push_back(RetiredEntry{std::move(obj), retire_epoch, bytes,
                                  std::chrono::steady_clock::now()});
}

void EpochGc::Sweep() {
  const uint64_t min = MinPinned();
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [min](const RetiredEntry& entry) {
                       return min == 0 || entry.epoch <= min;
                     }),
      retired_.end());
}

uint64_t EpochGc::MinPinned() const {
  uint64_t min = 0;
  for (size_t i = 0; i < kSlots; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && (min == 0 || e < min)) min = e;
  }
  return min;
}

size_t EpochGc::RetiredOutstanding() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

size_t EpochGc::RetiredBytes() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  size_t total = 0;
  for (const RetiredEntry& entry : retired_) total += entry.bytes;
  return total;
}

double EpochGc::OldestRetireAgeSeconds() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  if (retired_.empty()) return 0.0;
  auto oldest = retired_.front().retired_at;
  for (const RetiredEntry& entry : retired_) {
    if (entry.retired_at < oldest) oldest = entry.retired_at;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       oldest)
      .count();
}

uint64_t EpochGc::OldestPinLag() const {
  const uint64_t min = MinPinned();
  if (min == 0) return 0;
  const uint64_t cur = CurrentEpoch();
  return cur > min ? cur - min : 0;
}

}  // namespace rdfdb::rdf
