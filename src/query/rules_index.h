// Rules indexes: materialized entailment.
//
// "A rules index pre-computes triples that can be inferred from applying
// the rulebases" (CREATE_RULES_INDEX in the paper). This module holds the
// forward-chaining engine that computes the closure, the in-memory
// indexed triple set it produces, and the generic pattern evaluator that
// both the chaining loop and SDO_RDF_MATCH use.

#ifndef RDFDB_QUERY_RULES_INDEX_H_
#define RDFDB_QUERY_RULES_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "query/filter.h"
#include "query/rulebase.h"
#include "query/sparql_pattern.h"
#include "rdf/rdf_store.h"

namespace rdfdb::query {

/// One triple as VALUE_ID references (the unit of inference).
struct IdTriple {
  rdf::ValueId s = 0;
  rdf::ValueId p = 0;
  rdf::ValueId o = 0;
  rdf::ValueId canon_o = 0;  ///< canonical object id (== o when canonical)

  bool operator==(const IdTriple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Anything patterns can be matched against.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Visit triples matching the bound positions (nullopt = wildcard).
  /// The object constraint is against the canonical object id.
  virtual void Match(
      std::optional<rdf::ValueId> s, std::optional<rdf::ValueId> p,
      std::optional<rdf::ValueId> canon_o,
      const std::function<bool(const IdTriple&)>& fn) const = 0;

  /// Compiled-executor leaf hook: when this source is a plain
  /// single-model store scan, returns a LeafScan view of that model's
  /// id-native quad cache, letting the executor probe it directly with
  /// no virtual dispatch or per-row callback. Sources with composite
  /// semantics (unions, in-memory sets, multi-model scans) return an
  /// invalid scan and are driven through Match; results are identical
  /// either way.
  virtual rdf::LinkStore::LeafScan DirectLeaf() const { return {}; }
};

/// In-memory indexed triple collection (deduplicated on (s, p, o)).
class TripleSet final : public TripleSource {
 public:
  /// Add; returns true if the triple was new.
  bool Add(const IdTriple& triple);

  bool Contains(rdf::ValueId s, rdf::ValueId p, rdf::ValueId o) const;
  size_t size() const { return triples_.size(); }
  const std::vector<IdTriple>& triples() const { return triples_; }

  void Match(std::optional<rdf::ValueId> s, std::optional<rdf::ValueId> p,
             std::optional<rdf::ValueId> canon_o,
             const std::function<bool(const IdTriple&)>& fn) const override;

 private:
  static uint64_t Key(rdf::ValueId s, rdf::ValueId p, rdf::ValueId o);

  std::vector<IdTriple> triples_;
  std::unordered_set<uint64_t> seen_;
  std::unordered_multimap<rdf::ValueId, size_t> by_s_;
  std::unordered_multimap<rdf::ValueId, size_t> by_p_;
  std::unordered_multimap<rdf::ValueId, size_t> by_canon_o_;
};

/// Source over a store view (live store or pinned snapshot version)
/// restricted to a model list.
class ModelSource final : public TripleSource {
 public:
  ModelSource(const rdf::StoreView* store, std::vector<rdf::ModelId> models)
      : store_(store), models_(std::move(models)) {}

  void Match(std::optional<rdf::ValueId> s, std::optional<rdf::ValueId> p,
             std::optional<rdf::ValueId> canon_o,
             const std::function<bool(const IdTriple&)>& fn) const override;

  rdf::LinkStore::LeafScan DirectLeaf() const override;

 private:
  const rdf::StoreView* store_;
  std::vector<rdf::ModelId> models_;
};

/// Union of sources (e.g. models + a rules index).
class UnionSource final : public TripleSource {
 public:
  explicit UnionSource(std::vector<const TripleSource*> sources)
      : sources_(std::move(sources)) {}

  void Match(std::optional<rdf::ValueId> s, std::optional<rdf::ValueId> p,
             std::optional<rdf::ValueId> canon_o,
             const std::function<bool(const IdTriple&)>& fn) const override;

 private:
  std::vector<const TripleSource*> sources_;
};

/// Variable bindings as VALUE_IDs during join execution.
using IdBindings = std::map<std::string, rdf::ValueId>;

/// Join-execution tuning knobs.
struct EvalOptions {
  /// Reorder patterns by estimated selectivity before joining: patterns
  /// with more constants run first, then patterns connected to
  /// already-bound variables (avoiding cross products). Results are
  /// identical either way; only the work per solution changes.
  bool reorder_patterns = true;

  /// Evaluate with the original materializing join (one binding map
  /// copied per candidate row) instead of the compiled streaming
  /// executor (query/exec.h). Kept as the differential-testing oracle:
  /// slower, identical rows in identical order.
  bool use_legacy = false;

  /// Worker threads for the compiled executor's outer-pattern
  /// partition: 1 = sequential, 0 = one per hardware thread (capped).
  /// Ignored by the legacy executor. Row order and results are
  /// identical at any thread count.
  unsigned threads = 1;

  /// Outer frames per parallel work chunk (compiled executor only).
  /// Smaller chunks spread skewed outer bindings across workers at the
  /// cost of more hand-off; results are identical at any size.
  size_t chunk_frames = 512;

  /// When non-null, EvalPatterns appends one PatternTrace per executed
  /// pattern (scan/emit counts in execution order) and accumulates the
  /// plan order, dictionary-probe tallies, filter counts and plan wall
  /// time into this trace. Counts accumulate — SdoRdfMatch resets the
  /// trace once per query; direct callers reset it themselves.
  obs::QueryTrace* trace = nullptr;

  /// Cooperative cancellation token, polled by the compiled executor at
  /// its row-loop checkpoints (see query/exec.h). The legacy executor
  /// checks it once per candidate row of the outermost pattern. A fired
  /// token unwinds with DeadlineExceeded/Cancelled; trace counts
  /// flushed so far remain valid. Null disables the path.
  const CancelToken* cancel = nullptr;
};

/// The greedy join order the static planner would pick (no data
/// statistics): indices into `patterns`.
std::vector<size_t> PlanPatternOrder(
    const std::vector<TriplePattern>& patterns);

/// Cardinality-aware join order: probes `source` with each pattern's
/// constant positions (bounded count) and greedily picks the cheapest
/// pattern connected to the already-bound variables. This is the order
/// EvalPatterns uses when `reorder_patterns` is set.
std::vector<size_t> PlanPatternOrderForSource(
    const rdf::StoreView& store,
    const std::vector<TriplePattern>& patterns, const TripleSource& source);

/// Evaluate a pattern list against `source`; calls `fn` once per
/// solution. The default path compiles the patterns to the slot-based
/// streaming executor (query/exec.h) and builds one IdBindings map per
/// solution; EvalOptions::use_legacy selects the original materializing
/// join. `filter` (nullable) rejects solutions, with the terms it
/// references resolved through `store`. Return false from `fn` to stop
/// early — the stop unwinds out of the innermost scan.
Status EvalPatterns(const rdf::StoreView& store,
                    const std::vector<TriplePattern>& patterns,
                    const FilterExpr* filter, const TripleSource& source,
                    const std::function<bool(const IdBindings&)>& fn,
                    const EvalOptions& options = {});

/// Materialized entailment over a model list + rulebase list.
class RulesIndex {
 public:
  /// Forward-chain to fixpoint. Consequent constants are interned into
  /// the store's value table; the inferred triples are also persisted to
  /// MDSYS.RDFI_<index_name> (the paper's pre-computed table).
  static Result<std::unique_ptr<RulesIndex>> Build(
      rdf::RdfStore* store, const std::string& index_name,
      const std::vector<std::string>& model_names,
      const std::vector<const Rulebase*>& rulebases);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& model_names() const { return model_names_; }
  const std::vector<std::string>& rulebase_names() const {
    return rulebase_names_;
  }

  /// Inferred (non-base) triples only.
  const TripleSet& inferred() const { return inferred_; }
  size_t inferred_count() const { return inferred_.size(); }

  /// How many chaining rounds were needed to reach fixpoint.
  size_t rounds() const { return rounds_; }

  /// True if this index was built over exactly these models+rulebases
  /// (order-insensitive), so SDO_RDF_MATCH can reuse it.
  bool Covers(const std::vector<std::string>& model_names,
              const std::vector<std::string>& rulebase_names) const;

 private:
  RulesIndex() = default;

  std::string name_;
  std::vector<std::string> model_names_;
  std::vector<std::string> rulebase_names_;
  TripleSet inferred_;
  size_t rounds_ = 0;
};

/// Shared helper: run the chaining loop over `base`, returning inferred
/// triples (used by RulesIndex::Build and by SDO_RDF_MATCH's on-the-fly
/// inference path when no index exists).
Result<TripleSet> ComputeEntailment(
    rdf::RdfStore* store, const TripleSource& base,
    const std::vector<const Rulebase*>& rulebases, size_t* rounds_out);

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_RULES_INDEX_H_
