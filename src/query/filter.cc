#include "query/filter.h"

#include <cctype>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace rdfdb::query {

namespace {

enum class TokKind {
  kVar,
  kString,
  kNumber,
  kBare,
  kOp,      // = != <> < <= > >=
  kAnd,
  kOr,
  kNot,
  kLParen,
  kRParen,
  kEnd,
};

struct Tok {
  TokKind kind;
  std::string text;
};

Result<std::vector<Tok>> Lex(const std::string& text) {
  std::vector<Tok> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      out.push_back({TokKind::kLParen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      out.push_back({TokKind::kRParen, ")"});
      ++i;
      continue;
    }
    if (c == '?') {
      size_t start = ++i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      if (i == start) return Status::InvalidArgument("empty variable name");
      out.push_back({TokKind::kVar, text.substr(start, i - start)});
      continue;
    }
    if (c == '"') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          body.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        body.push_back(text[i]);
        ++i;
      }
      if (!closed) return Status::InvalidArgument("unterminated string");
      out.push_back({TokKind::kString, std::move(body)});
      continue;
    }
    if (c == '=' ) {
      out.push_back({TokKind::kOp, "="});
      ++i;
      continue;
    }
    if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      out.push_back({TokKind::kOp, "!="});
      i += 2;
      continue;
    }
    if (c == '<') {
      if (i + 1 < text.size() && text[i + 1] == '>') {
        out.push_back({TokKind::kOp, "!="});
        i += 2;
      } else if (i + 1 < text.size() && text[i + 1] == '=') {
        out.push_back({TokKind::kOp, "<="});
        i += 2;
      } else {
        out.push_back({TokKind::kOp, "<"});
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < text.size() && text[i + 1] == '=') {
        out.push_back({TokKind::kOp, ">="});
        i += 2;
      } else {
        out.push_back({TokKind::kOp, ">"});
        ++i;
      }
      continue;
    }
    // bare word: keyword, number, or literal token
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '(' && text[i] != ')' && text[i] != '=' &&
           text[i] != '!' && text[i] != '<' && text[i] != '>') {
      ++i;
    }
    if (i == start) {
      // An operator-ish character that matched no operator rule (e.g. a
      // lone '!'): consuming nothing would loop forever.
      return Status::InvalidArgument(
          std::string("unexpected character '") + c + "' in filter");
    }
    std::string word = text.substr(start, i - start);
    std::string upper = ToUpper(word);
    if (upper == "AND") {
      out.push_back({TokKind::kAnd, word});
    } else if (upper == "OR") {
      out.push_back({TokKind::kOr, word});
    } else if (upper == "NOT") {
      out.push_back({TokKind::kNot, word});
    } else {
      double d;
      out.push_back({ParseDouble(word, &d) ? TokKind::kNumber
                                           : TokKind::kBare,
                     word});
    }
  }
  out.push_back({TokKind::kEnd, ""});
  return out;
}

/// One side of a comparison.
struct Operand {
  bool is_var = false;
  std::string text;  ///< variable name or literal text
};

class CmpExpr final : public FilterExpr {
 public:
  CmpExpr(Operand lhs, std::string op, Operand rhs)
      : lhs_(std::move(lhs)), op_(std::move(op)), rhs_(std::move(rhs)) {}

  bool Evaluate(const Bindings& bindings) const override {
    std::string a, b;
    if (!Resolve(lhs_, bindings, &a) || !Resolve(rhs_, bindings, &b)) {
      return false;
    }
    double na, nb;
    int c;
    if (ParseDouble(a, &na) && ParseDouble(b, &nb)) {
      c = na < nb ? -1 : (na > nb ? 1 : 0);
    } else {
      int sc = a.compare(b);
      c = sc < 0 ? -1 : (sc > 0 ? 1 : 0);
    }
    if (op_ == "=") return c == 0;
    if (op_ == "!=") return c != 0;
    if (op_ == "<") return c < 0;
    if (op_ == "<=") return c <= 0;
    if (op_ == ">") return c > 0;
    if (op_ == ">=") return c >= 0;
    return false;
  }

  void CollectVariables(std::set<std::string>* out) const override {
    if (lhs_.is_var) out->insert(lhs_.text);
    if (rhs_.is_var) out->insert(rhs_.text);
  }

 private:
  static bool Resolve(const Operand& operand, const Bindings& bindings,
                      std::string* out) {
    if (!operand.is_var) {
      *out = operand.text;
      return true;
    }
    auto it = bindings.find(operand.text);
    if (it == bindings.end()) return false;
    *out = it->second.ToDisplayString();
    return true;
  }

  Operand lhs_;
  std::string op_;
  Operand rhs_;
};

class AndExpr final : public FilterExpr {
 public:
  AndExpr(FilterPtr a, FilterPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  bool Evaluate(const Bindings& bindings) const override {
    return a_->Evaluate(bindings) && b_->Evaluate(bindings);
  }
  void CollectVariables(std::set<std::string>* out) const override {
    a_->CollectVariables(out);
    b_->CollectVariables(out);
  }

 private:
  FilterPtr a_, b_;
};

class OrExpr final : public FilterExpr {
 public:
  OrExpr(FilterPtr a, FilterPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  bool Evaluate(const Bindings& bindings) const override {
    return a_->Evaluate(bindings) || b_->Evaluate(bindings);
  }
  void CollectVariables(std::set<std::string>* out) const override {
    a_->CollectVariables(out);
    b_->CollectVariables(out);
  }

 private:
  FilterPtr a_, b_;
};

class NotExpr final : public FilterExpr {
 public:
  explicit NotExpr(FilterPtr a) : a_(std::move(a)) {}
  bool Evaluate(const Bindings& bindings) const override {
    return !a_->Evaluate(bindings);
  }
  void CollectVariables(std::set<std::string>* out) const override {
    a_->CollectVariables(out);
  }

 private:
  FilterPtr a_;
};

class TrueExpr final : public FilterExpr {
 public:
  bool Evaluate(const Bindings&) const override { return true; }
  bool IsAlwaysTrue() const override { return true; }
};

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<FilterPtr> Parse() {
    RDFDB_ASSIGN_OR_RETURN(FilterPtr expr, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing tokens in filter");
    }
    return expr;
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  Tok Take() { return toks_[pos_++]; }

  Result<FilterPtr> ParseOr() {
    RDFDB_ASSIGN_OR_RETURN(FilterPtr lhs, ParseAnd());
    while (Peek().kind == TokKind::kOr) {
      Take();
      RDFDB_ASSIGN_OR_RETURN(FilterPtr rhs, ParseAnd());
      lhs = std::make_shared<OrExpr>(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FilterPtr> ParseAnd() {
    RDFDB_ASSIGN_OR_RETURN(FilterPtr lhs, ParseUnary());
    while (Peek().kind == TokKind::kAnd) {
      Take();
      RDFDB_ASSIGN_OR_RETURN(FilterPtr rhs, ParseUnary());
      lhs = std::make_shared<AndExpr>(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FilterPtr> ParseUnary() {
    if (Peek().kind == TokKind::kNot) {
      Take();
      RDFDB_ASSIGN_OR_RETURN(FilterPtr inner, ParseUnary());
      return FilterPtr(std::make_shared<NotExpr>(std::move(inner)));
    }
    if (Peek().kind == TokKind::kLParen) {
      Take();
      RDFDB_ASSIGN_OR_RETURN(FilterPtr inner, ParseOr());
      if (Peek().kind != TokKind::kRParen) {
        return Status::InvalidArgument("missing ')' in filter");
      }
      Take();
      return inner;
    }
    return ParseCmp();
  }

  Result<Operand> ParseOperand() {
    Tok tok = Take();
    Operand operand;
    switch (tok.kind) {
      case TokKind::kVar:
        operand.is_var = true;
        operand.text = tok.text;
        return operand;
      case TokKind::kString:
      case TokKind::kNumber:
      case TokKind::kBare:
        operand.text = tok.text;
        return operand;
      default:
        return Status::InvalidArgument("expected operand, got '" + tok.text +
                                       "'");
    }
  }

  Result<FilterPtr> ParseCmp() {
    RDFDB_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (Peek().kind != TokKind::kOp) {
      return Status::InvalidArgument("expected comparison operator");
    }
    std::string op = Take().text;
    RDFDB_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return FilterPtr(
        std::make_shared<CmpExpr>(std::move(lhs), std::move(op),
                                  std::move(rhs)));
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<FilterPtr> ParseFilter(const std::string& text) {
  if (Trim(text).empty()) {
    return FilterPtr(std::make_shared<TrueExpr>());
  }
  RDFDB_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(text));
  return Parser(std::move(toks)).Parse();
}

}  // namespace rdfdb::query
