// Filter expressions for SDO_RDF_MATCH's `filter` argument and rule
// filters.
//
// Grammar (case-insensitive keywords):
//   expr   := and_e (OR and_e)*
//   and_e  := unary (AND unary)*
//   unary  := NOT unary | '(' expr ')' | cmp
//   cmp    := operand (= | != | <> | < | <= | > | >=) operand
//   operand:= ?var | "quoted string" | number | bare-token
//
// Comparisons are numeric when both sides parse as numbers, otherwise
// string comparisons over the terms' display text. A comparison against
// an unbound variable is false.

#ifndef RDFDB_QUERY_FILTER_H_
#define RDFDB_QUERY_FILTER_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"

namespace rdfdb::query {

/// Variable bindings produced by pattern matching.
using Bindings = std::map<std::string, rdf::Term>;

/// Compiled filter. Build with ParseFilter.
class FilterExpr {
 public:
  virtual ~FilterExpr() = default;
  virtual bool Evaluate(const Bindings& bindings) const = 0;
  /// True only for the trivial filter an empty expression compiles to.
  /// Evaluators use this to skip materialising term bindings for rows
  /// that could never be rejected.
  virtual bool IsAlwaysTrue() const { return false; }

  /// Add every variable the expression references to `out`. The
  /// compiled executor uses this to evaluate the filter as soon as
  /// those variables are bound, and to resolve only their terms.
  virtual void CollectVariables(std::set<std::string>* out) const {
    (void)out;
  }
};

using FilterPtr = std::shared_ptr<const FilterExpr>;

/// Compile a filter expression. An empty/blank string compiles to the
/// always-true filter.
Result<FilterPtr> ParseFilter(const std::string& text);

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_FILTER_H_
