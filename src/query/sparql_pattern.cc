#include "query/sparql_pattern.h"

#include <cctype>
#include <unordered_map>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfdb::query {

AliasList BuiltinAliases() {
  return {
      {"rdf", std::string(rdf::kRdfNs)},
      {"rdfs", std::string(rdf::kRdfsNs)},
      {"xsd", std::string(rdf::kXsdNs)},
  };
}

PatternNode PatternNode::Var(std::string name) {
  PatternNode node;
  node.is_variable = true;
  node.variable = std::move(name);
  return node;
}

PatternNode PatternNode::Const(rdf::Term term) {
  PatternNode node;
  node.is_variable = false;
  node.term = std::move(term);
  return node;
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  for (const PatternNode* node : {&subject, &predicate, &object}) {
    if (node->is_variable) out.push_back(node->variable);
  }
  return out;
}

const PatternNode& TriplePattern::Position(size_t i) const {
  switch (i) {
    case 0:
      return subject;
    case 1:
      return predicate;
    default:
      return object;
  }
}

namespace {

std::string NodeToString(const PatternNode& node) {
  if (node.is_variable) return "?" + node.variable;
  const rdf::Term& term = node.term;
  if (term.is_uri()) return "<" + term.ToDisplayString() + ">";
  if (term.is_literal()) return "\"" + term.ToDisplayString() + "\"";
  return term.ToDisplayString();  // blank node
}

/// Expand "prefix:local" through the alias map; returns false when the
/// prefix is unknown (the token is then treated as a full URI as-is).
bool ExpandAlias(const AliasMap& aliases, const std::string& token,
                 std::string* out) {
  size_t colon = token.find(':');
  if (colon == std::string::npos) return false;
  auto it = aliases.find(token.substr(0, colon));
  if (it == aliases.end()) return false;
  *out = it->second + token.substr(colon + 1);
  return true;
}

/// Split the body of one pattern into whitespace-separated tokens,
/// keeping quoted literals (which may contain spaces) intact.
Result<std::vector<std::string>> TokenizePatternBody(
    const std::string& body) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size()) break;
    size_t start = i;
    if (body[i] == '"') {
      ++i;
      while (i < body.size()) {
        if (body[i] == '\\') {
          i += 2;
          continue;
        }
        if (body[i] == '"') {
          ++i;
          break;
        }
        ++i;
      }
      // Attach any @lang / ^^<dt> suffix.
      while (i < body.size() &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
    } else {
      while (i < body.size() &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
    }
    tokens.push_back(body.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

std::string TriplePattern::ToString() const {
  return "(" + NodeToString(subject) + " " + NodeToString(predicate) + " " +
         NodeToString(object) + ")";
}

AliasMap BuildAliasMap(const AliasList& aliases) {
  AliasMap alias_map;
  for (const SdoRdfAlias& alias : BuiltinAliases()) {
    alias_map[alias.prefix] = alias.namespace_uri;
  }
  for (const SdoRdfAlias& alias : aliases) {
    alias_map[alias.prefix] = alias.namespace_uri;  // user bindings win
  }
  return alias_map;
}

Result<PatternNode> ParsePatternToken(const std::string& token,
                                      const AliasMap& aliases) {
  if (token.empty()) return Status::InvalidArgument("empty pattern token");
  if (token[0] == '?') {
    std::string name = token.substr(1);
    if (name.empty()) {
      return Status::InvalidArgument("variable needs a name: " + token);
    }
    return PatternNode::Var(std::move(name));
  }
  std::string expanded;
  if (token[0] != '"' && token[0] != '<' &&
      ExpandAlias(aliases, token, &expanded)) {
    return PatternNode::Const(rdf::Term::Uri(std::move(expanded)));
  }
  RDFDB_ASSIGN_OR_RETURN(rdf::Term term, rdf::ParseApiTerm(token));
  return PatternNode::Const(std::move(term));
}

Result<PatternNode> ParsePatternToken(const std::string& token,
                                      const AliasList& aliases) {
  return ParsePatternToken(token, BuildAliasMap(aliases));
}

Result<std::vector<TriplePattern>> ParsePatterns(const std::string& query,
                                                 const AliasList& aliases) {
  const AliasMap alias_map = BuildAliasMap(aliases);
  std::vector<TriplePattern> patterns;
  size_t i = 0;
  while (i < query.size()) {
    while (i < query.size() &&
           std::isspace(static_cast<unsigned char>(query[i]))) {
      ++i;
    }
    if (i >= query.size()) break;
    if (query[i] != '(') {
      return Status::InvalidArgument("expected '(' at offset " +
                                     std::to_string(i) + " in: " + query);
    }
    size_t close = query.find(')', i + 1);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unbalanced '(' in: " + query);
    }
    std::string body = query.substr(i + 1, close - i - 1);
    i = close + 1;

    RDFDB_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                           TokenizePatternBody(body));
    if (tokens.size() != 3) {
      return Status::InvalidArgument(
          "pattern must have exactly 3 terms, got " +
          std::to_string(tokens.size()) + " in: (" + body + ")");
    }
    TriplePattern pattern;
    RDFDB_ASSIGN_OR_RETURN(pattern.subject,
                           ParsePatternToken(tokens[0], alias_map));
    RDFDB_ASSIGN_OR_RETURN(pattern.predicate,
                           ParsePatternToken(tokens[1], alias_map));
    RDFDB_ASSIGN_OR_RETURN(pattern.object,
                           ParsePatternToken(tokens[2], alias_map));
    if (!pattern.subject.is_variable && pattern.subject.term.is_literal()) {
      return Status::InvalidArgument("pattern subject must not be a literal");
    }
    if (!pattern.predicate.is_variable &&
        !pattern.predicate.term.is_uri()) {
      return Status::InvalidArgument("pattern predicate must be a URI");
    }
    patterns.push_back(std::move(pattern));
  }
  if (patterns.empty()) {
    return Status::InvalidArgument("query has no patterns: " + query);
  }
  return patterns;
}

}  // namespace rdfdb::query
