#include "query/rulebase.h"

#include <algorithm>
#include <set>

#include "query/filter.h"

namespace rdfdb::query {

Status ValidateRule(const Rule& rule) {
  if (rule.name.empty()) {
    return Status::InvalidArgument("rule needs a name");
  }
  auto antecedent = ParsePatterns(rule.antecedent, rule.aliases);
  if (!antecedent.ok()) {
    return Status::InvalidArgument("rule " + rule.name + " antecedent: " +
                                   antecedent.status().message());
  }
  auto consequent = ParsePatterns(rule.consequent, rule.aliases);
  if (!consequent.ok()) {
    return Status::InvalidArgument("rule " + rule.name + " consequent: " +
                                   consequent.status().message());
  }
  if (consequent->size() != 1) {
    return Status::InvalidArgument("rule " + rule.name +
                                   " must have exactly one consequent "
                                   "pattern");
  }
  auto fc = ParseFilter(rule.filter);
  if (!fc.ok()) {
    return Status::InvalidArgument("rule " + rule.name + " filter: " +
                                   fc.status().message());
  }
  std::set<std::string> bound;
  for (const TriplePattern& pattern : *antecedent) {
    for (const std::string& var : pattern.Variables()) bound.insert(var);
  }
  for (const std::string& var : consequent->front().Variables()) {
    if (bound.count(var) == 0) {
      return Status::InvalidArgument("rule " + rule.name +
                                     ": consequent variable ?" + var +
                                     " is not bound by the antecedent");
    }
  }
  return Status::OK();
}

Status Rulebase::AddRule(Rule rule) {
  RDFDB_RETURN_NOT_OK(ValidateRule(rule));
  bool duplicate =
      std::any_of(rules_.begin(), rules_.end(),
                  [&](const Rule& r) { return r.name == rule.name; });
  if (duplicate) {
    return Status::AlreadyExists("rule " + rule.name + " in rulebase " +
                                 name_);
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

namespace {

Rulebase MakeRdfsRulebase() {
  Rulebase rb(kRdfsRulebaseName);
  auto add = [&rb](const char* name, const char* antecedent,
                   const char* consequent) {
    Rule rule;
    rule.name = name;
    rule.antecedent = antecedent;
    rule.consequent = consequent;
    Status st = rb.AddRule(std::move(rule));
    (void)st;  // built-in rules are statically valid
  };
  // W3C RDF Semantics, section 7.3 (entailment rule names kept).
  add("rdfs2", "(?p rdfs:domain ?c) (?x ?p ?y)", "(?x rdf:type ?c)");
  add("rdfs3", "(?p rdfs:range ?c) (?x ?p ?y)", "(?y rdf:type ?c)");
  add("rdfs5", "(?p rdfs:subPropertyOf ?q) (?q rdfs:subPropertyOf ?r)",
      "(?p rdfs:subPropertyOf ?r)");
  add("rdfs6", "(?p rdf:type rdf:Property)", "(?p rdfs:subPropertyOf ?p)");
  add("rdfs7", "(?p rdfs:subPropertyOf ?q) (?x ?p ?y)", "(?x ?q ?y)");
  add("rdfs8", "(?c rdf:type rdfs:Class)",
      "(?c rdfs:subClassOf rdfs:Resource)");
  add("rdfs9", "(?c rdfs:subClassOf ?d) (?x rdf:type ?c)",
      "(?x rdf:type ?d)");
  add("rdfs10", "(?c rdf:type rdfs:Class)", "(?c rdfs:subClassOf ?c)");
  add("rdfs11", "(?c rdfs:subClassOf ?d) (?d rdfs:subClassOf ?e)",
      "(?c rdfs:subClassOf ?e)");
  add("rdfs12", "(?p rdf:type rdfs:ContainerMembershipProperty)",
      "(?p rdfs:subPropertyOf rdfs:member)");
  add("rdfs13", "(?c rdf:type rdfs:Datatype)",
      "(?c rdfs:subClassOf rdfs:Literal)");
  return rb;
}

}  // namespace

const Rulebase& BuiltinRdfsRulebase() {
  static const Rulebase kRdfs = MakeRdfsRulebase();
  return kRdfs;
}

}  // namespace rdfdb::query
