// SDO_RDF_MATCH: the paper's SQL-based RDF querying table function.
//
//   SDO_RDF_MATCH(query, models, rulebases, aliases, filter)
//
// Queries use SPARQL-like pattern syntax, evaluate over one or more
// models (the central schema makes cross-model reasoning a union), and
// may apply rulebases. When a rules index covering the requested
// models+rulebases exists, its pre-computed triples are used; otherwise
// entailment is computed on the fly.

#ifndef RDFDB_QUERY_MATCH_H_
#define RDFDB_QUERY_MATCH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "query/inference.h"
#include "query/sparql_pattern.h"
#include "rdf/rdf_store.h"
#include "rdf/term.h"

namespace rdfdb::query {

/// Result table: one column per distinct query variable (in order of
/// first appearance), one row per solution.
class MatchResult {
 public:
  const std::vector<std::string>& columns() const { return columns_; }
  size_t row_count() const { return rows_.size(); }

  /// Term at (row, column index).
  const rdf::Term& at(size_t row, size_t col) const {
    return rows_[row][col];
  }

  /// Column position by variable name; -1 if absent. Memoized: the
  /// first call after the columns change builds a name→index map, so
  /// per-row Get() loops don't rescan the column list.
  int ColumnIndex(const std::string& name) const;

  /// Display text at (row, variable name); empty if the column is absent.
  std::string Get(size_t row, const std::string& name) const;

  /// Rendered rows for diagnostics.
  std::string ToString() const;

 private:
  friend class MatchBuilder;
  std::vector<std::string> columns_;
  std::vector<std::vector<rdf::Term>> rows_;
  /// Lazy name→index cache; rebuilt when its size disagrees with
  /// columns_ (column names are unique, so size is a reliable check).
  mutable std::unordered_map<std::string, int> column_index_;
};

/// Internal access shim so the executor can populate MatchResult.
class MatchBuilder {
 public:
  static std::vector<std::string>* columns(MatchResult* r) {
    return &r->columns_;
  }
  static std::vector<std::vector<rdf::Term>>* rows(MatchResult* r) {
    return &r->rows_;
  }
};

/// Result-shaping options (the SELECT-list half of the SQL statement
/// that wraps SDO_RDF_MATCH in the paper's examples).
struct MatchOptions {
  /// Keep only these variables, in this order (empty = all variables in
  /// first-appearance order). Unknown names are an error.
  std::vector<std::string> projection;
  /// Drop duplicate rows (applied after projection, like
  /// SELECT DISTINCT).
  bool distinct = false;
  /// Stop after this many rows (0 = unlimited).
  size_t limit = 0;
  /// Worker threads for the compiled join executor (see
  /// EvalOptions::threads): 1 = sequential, 0 = one per hardware thread
  /// (capped). Rows and row order are identical at any count.
  unsigned threads = 1;
  /// Outer frames per parallel work chunk (see
  /// EvalOptions::chunk_frames); results are identical at any size.
  size_t chunk_frames = 512;
  /// Evaluate with the legacy materializing join instead of the
  /// compiled streaming executor (differential-testing oracle; see
  /// EvalOptions::use_legacy).
  bool use_legacy = false;
  /// EXPLAIN ANALYZE hook: when non-null, SdoRdfMatch resets the trace
  /// and fills it with the chosen plan, per-pattern scan/emit counts,
  /// dictionary traffic, DISTINCT/filter drops and per-stage wall
  /// times. Null (the default) keeps every instrumentation site to a
  /// single branch.
  obs::QueryTrace* trace = nullptr;
  /// Cooperative cancellation token (deadline and/or explicit cancel),
  /// polled at the executor's row-loop checkpoints. A fired token fails
  /// the match with DeadlineExceeded/Cancelled; any trace supplied
  /// above still carries the partial-progress counts flushed before the
  /// unwind. Null disables the path.
  const CancelToken* cancel = nullptr;
};

/// Execute a match. `engine` may be null when `rulebase_names` is empty.
/// `filter` is an optional boolean expression over the variables (see
/// filter.h); pass "" for none.
Result<MatchResult> SdoRdfMatch(
    rdf::RdfStore* store, InferenceEngine* engine, const std::string& query,
    const std::vector<std::string>& model_names,
    const std::vector<std::string>& rulebase_names,
    const AliasList& aliases, const std::string& filter,
    const MatchOptions& options = {});

/// Read-only overload over any StoreView — in particular a pinned
/// snapshot version (SnapshotRdfStore::Snapshot()->view()), where the
/// whole query runs lock-free against the pinned state. No rulebases:
/// on-the-fly entailment needs a mutable store to intern consequents
/// (run it through the RdfStore* overload, or pre-build a rules index).
Result<MatchResult> SdoRdfMatch(
    const rdf::StoreView& store, const std::string& query,
    const std::vector<std::string>& model_names, const AliasList& aliases,
    const std::string& filter, const MatchOptions& options = {});

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_MATCH_H_
