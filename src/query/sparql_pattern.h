// SPARQL-like triple-pattern parsing for SDO_RDF_MATCH.
//
// The paper's query syntax is a sequence of parenthesized patterns, e.g.
//   '(gov:files gov:terrorSuspect ?name) (?name gov:enteredCountry ?d)'
// with namespace aliases supplied as SDO_RDF_ALIASES(SDO_RDF_ALIAS('gov',
// 'http://www.us.gov#')). Tokens may be ?variables, prefixed names,
// <uris>, quoted literals, or bare literals.

#ifndef RDFDB_QUERY_SPARQL_PATTERN_H_
#define RDFDB_QUERY_SPARQL_PATTERN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"

namespace rdfdb::query {

/// SDO_RDF_ALIAS: one namespace prefix binding.
struct SdoRdfAlias {
  std::string prefix;
  std::string namespace_uri;
};

/// SDO_RDF_ALIASES.
using AliasList = std::vector<SdoRdfAlias>;

/// Built-in aliases always available: rdf, rdfs, xsd.
AliasList BuiltinAliases();

/// prefix → namespace URI, ready for token expansion.
using AliasMap = std::unordered_map<std::string, std::string>;

/// Merge `aliases` over the built-ins (user bindings win). Build this
/// once per query and reuse it for every token — ParsePatternToken's
/// AliasList overload rebuilds it per call.
AliasMap BuildAliasMap(const AliasList& aliases);

/// One position of a pattern: either a variable or a concrete term.
struct PatternNode {
  bool is_variable = false;
  std::string variable;  ///< name without the '?' sigil
  rdf::Term term;        ///< valid when !is_variable

  static PatternNode Var(std::string name);
  static PatternNode Const(rdf::Term term);
};

/// One (s p o) pattern.
struct TriplePattern {
  PatternNode subject;
  PatternNode predicate;
  PatternNode object;

  /// Variable names used, in position order (may repeat).
  std::vector<std::string> Variables() const;

  /// Position accessor: 0 = subject, 1 = predicate, 2 = object. Lets
  /// the compiler/planner loop over positions instead of repeating
  /// per-position code.
  const PatternNode& Position(size_t i) const;

  /// Compact rendering for plans and traces: variables as "?name",
  /// URIs in angle brackets, literals quoted — e.g. '(?s <uri> "v")'.
  std::string ToString() const;
};

/// Parse the full pattern list. `aliases` are merged over the built-ins
/// (user bindings win).
Result<std::vector<TriplePattern>> ParsePatterns(const std::string& query,
                                                 const AliasList& aliases);

/// Parse a single token into a node (exposed for the rule parser).
Result<PatternNode> ParsePatternToken(const std::string& token,
                                      const AliasMap& aliases);

/// Convenience overload for one-off tokens: builds the merged map and
/// delegates. Prefer BuildAliasMap + the AliasMap overload in loops.
Result<PatternNode> ParsePatternToken(const std::string& token,
                                      const AliasList& aliases);

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_SPARQL_PATTERN_H_
