// InferenceEngine: the C++ equivalent of the paper's SDO_RDF_INFERENCE
// PL/SQL package — CREATE_RULEBASE, rule insertion (the mdsys.rdfr_<rb>
// tables), and CREATE_RULES_INDEX.

#ifndef RDFDB_QUERY_INFERENCE_H_
#define RDFDB_QUERY_INFERENCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/rulebase.h"
#include "query/rules_index.h"
#include "rdf/rdf_store.h"

namespace rdfdb::query {

/// Rulebase and rules-index registry bound to one RdfStore.
class InferenceEngine {
 public:
  explicit InferenceEngine(rdf::RdfStore* store) : store_(store) {}

  // ---- Rulebases -------------------------------------------------------

  /// SDO_RDF_INFERENCE.CREATE_RULEBASE: registers the rulebase and
  /// creates its MDSYS.RDFR_<name> rule table.
  Status CreateRulebase(const std::string& name);

  /// Add a rule (the paper's INSERT INTO mdsys.rdfr_<rb>). Validates the
  /// rule and appends a row to the rule table.
  Status InsertRule(const std::string& rulebase_name, Rule rule);

  /// Fetch a rulebase. "RDFS" (case-insensitive) resolves to the
  /// built-in RDFS entailment rulebase.
  Result<const Rulebase*> GetRulebase(const std::string& name) const;

  /// Drop a user rulebase and its rule table.
  Status DropRulebase(const std::string& name);

  /// Registered user rulebase names (excludes the built-in RDFS).
  std::vector<std::string> RulebaseNames() const;

  // ---- Rules indexes ----------------------------------------------------

  /// SDO_RDF_INFERENCE.CREATE_RULES_INDEX: pre-compute the entailment of
  /// `rulebase_names` over `model_names` and register it under
  /// `index_name`.
  Result<const RulesIndex*> CreateRulesIndex(
      const std::string& index_name,
      const std::vector<std::string>& model_names,
      const std::vector<std::string>& rulebase_names);

  Status DropRulesIndex(const std::string& index_name);

  /// The registered index covering exactly these models+rulebases, or
  /// nullptr. SDO_RDF_MATCH uses this to pick the pre-computed path.
  const RulesIndex* FindCoveringIndex(
      const std::vector<std::string>& model_names,
      const std::vector<std::string>& rulebase_names) const;

  /// Resolve rulebase names to rulebase pointers (shared with
  /// SdoRdfMatch's on-the-fly inference path).
  Result<std::vector<const Rulebase*>> ResolveRulebases(
      const std::vector<std::string>& names) const;

  rdf::RdfStore* store() { return store_; }

 private:
  static std::string NormalizeName(const std::string& name);

  rdf::RdfStore* store_;
  std::map<std::string, Rulebase> rulebases_;  // key: normalized name
  std::map<std::string, std::unique_ptr<RulesIndex>> indexes_;
};

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_INFERENCE_H_
