// Rulebases for SDO_RDF_INFERENCE.
//
// A rulebase is a named set of rules; each rule has an antecedent pattern
// list, an optional filter, a consequent pattern, and its own aliases —
// exactly the row shape of the paper's mdsys.rdfr_<rulebase> tables:
//
//   INSERT INTO mdsys.rdfr_intel_rb VALUES ('intel_rule',
//     '(?x gov:terrorAction "bombing")', null,
//     '(gov:files gov:terrorSuspect ?x)',
//     SDO_RDF_ALIASES(SDO_RDF_ALIAS('gov','http://www.us.gov#')));
//
// The Oracle-supplied "RDFS" rulebase (the W3C RDFS entailment rules) is
// available via BuiltinRdfsRulebase().

#ifndef RDFDB_QUERY_RULEBASE_H_
#define RDFDB_QUERY_RULEBASE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/sparql_pattern.h"
#include "storage/database.h"

namespace rdfdb::query {

/// One inference rule.
struct Rule {
  std::string name;
  std::string antecedent;  ///< pattern list, e.g. '(?x gov:p "v") (?x ?q ?y)'
  std::string filter;      ///< optional filter over antecedent bindings
  std::string consequent;  ///< single pattern; its variables must be bound
                           ///< by the antecedent
  AliasList aliases;
};

/// Named set of rules.
class Rulebase {
 public:
  explicit Rulebase(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Append a rule; fails if a rule of the same name exists or the rule's
  /// patterns do not parse.
  Status AddRule(Rule rule);

 private:
  std::string name_;
  std::vector<Rule> rules_;
};

/// Validate that a rule is well-formed: antecedent and consequent parse,
/// the filter parses, and every consequent variable is bound by the
/// antecedent.
Status ValidateRule(const Rule& rule);

/// The Oracle-supplied RDFS rulebase: rdfs2 (domain), rdfs3 (range),
/// rdfs5/rdfs7 (subPropertyOf transitivity/inheritance), rdfs6, rdfs8,
/// rdfs9/rdfs11 (subClassOf instance/transitivity), rdfs10, rdfs12,
/// rdfs13. (rdfs1/4a/4b — the "everything is an rdfs:Resource" axioms —
/// are omitted, as most production reasoners do, to avoid universally
/// typing every node.)
const Rulebase& BuiltinRdfsRulebase();

/// Name under which the built-in rulebase is registered.
inline constexpr const char* kRdfsRulebaseName = "RDFS";

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_RULEBASE_H_
