#include "query/exec.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "obs/active_ops.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "query/rules_index.h"
#include "rdf/canonical.h"

namespace rdfdb::query {

namespace {

using rdf::StoreView;
using rdf::Term;
using rdf::ValueId;

constexpr unsigned kMaxAutoThreads = 8;

unsigned EffectiveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(hw, kMaxAutoThreads);
}

/// Per-run (or per-chunk, in parallel mode) counter accumulator.
/// Workers fill a private instance; the consumer merges them in chunk
/// order, so traced totals are deterministic.
struct ExecCounters {
  explicit ExecCounters(size_t steps) : scanned(steps, 0), emitted(steps, 0) {}

  std::vector<size_t> scanned;
  std::vector<size_t> emitted;
  size_t filter_evaluations = 0;
  size_t filter_rejections = 0;
  size_t value_resolutions = 0;

  void MergeFrom(const ExecCounters& other) {
    for (size_t i = 0; i < scanned.size(); ++i) {
      scanned[i] += other.scanned[i];
      emitted[i] += other.emitted[i];
    }
    filter_evaluations += other.filter_evaluations;
    filter_rejections += other.filter_rejections;
    value_resolutions += other.value_resolutions;
  }
};

/// Accumulate a run's counters into the trace entries CompilePatterns
/// appended for this plan.
void FlushCounters(obs::QueryTrace* trace, const CompiledPlan& plan,
                   const ExecCounters& counters) {
  if (trace == nullptr) return;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    obs::PatternTrace& pt = trace->patterns[plan.trace_base + i];
    pt.rows_scanned += counters.scanned[i];
    pt.rows_emitted += counters.emitted[i];
  }
  trace->filter_evaluations += counters.filter_evaluations;
  trace->filter_rejections += counters.filter_rejections;
  trace->value_resolutions += counters.value_resolutions;
}

/// Resolve the filter's referenced slots to Terms and evaluate.
Result<bool> EvalCompiledFilter(const StoreView& store,
                                const CompiledPlan& plan,
                                const ValueId* slots,
                                ExecCounters* counters) {
  Bindings bindings;
  for (const auto& [name, slot] : plan.filter_vars) {
    RDFDB_ASSIGN_OR_RETURN(Term term, store.TermForValueId(slots[slot]));
    bindings.emplace(name, std::move(term));
  }
  counters->value_resolutions += plan.filter_vars.size();
  ++counters->filter_evaluations;
  if (plan.filter->Evaluate(bindings)) return true;
  ++counters->filter_rejections;
  return false;
}

/// The leaf-scan view backing StepRunner's fast path: valid when the
/// source is a plain single-model store scan.
rdf::LinkStore::LeafScan LeafFor(const TripleSource& source) {
  return source.DirectLeaf();
}

/// Depth-first streaming join over a step range. One instance per
/// thread; `slots` is the caller's frame, overwritten in place (a bind
/// slot is rewritten on the next row of its own step before any deeper
/// step rereads it, so no save/restore is needed).
class StepRunner {
 public:
  StepRunner(const StoreView& store, const CompiledPlan& plan,
             const TripleSource& source, rdf::LinkStore::LeafScan leaf,
             ExecCounters* counters, const std::atomic<bool>* cancel,
             const CancelToken* token)
      : store_(store),
        plan_(plan),
        source_(source),
        leaf_(leaf),
        counters_(counters),
        cancel_(cancel),
        token_(token) {}

  /// Join steps [first, last]; `slots` already holds bindings made by
  /// steps before `first`. `sink` fires once per solution of step
  /// `last`; returning false stops the run (OK status).
  Status Run(size_t first, size_t last, ValueId* slots,
             const SlotRowFn& sink) {
    slots_ = slots;
    sink_ = &sink;
    last_ = last;
    stop_ = false;
    status_ = Status::OK();
    Descend(first);
    return status_;
  }

 private:
  std::optional<ValueId> Constraint(const ExecPos& pos) const {
    switch (pos.kind) {
      case ExecPos::Kind::kConst:
        return pos.id;
      case ExecPos::Kind::kProbe:
        return slots_[pos.slot];
      default:
        return std::nullopt;
    }
  }

  bool Apply(const ExecPos& pos, ValueId value) {
    if (pos.kind == ExecPos::Kind::kBind) {
      slots_[pos.slot] = value;
      return true;
    }
    if (pos.kind == ExecPos::Kind::kCheck) return slots_[pos.slot] == value;
    return true;
  }

  /// Per-row join body shared by both scan paths. Returns false to
  /// stop the enclosing scan (early stop or error), true to continue.
  bool OnRow(size_t i, ValueId s, ValueId p, ValueId canon_o) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      stop_ = true;
      return false;
    }
    // Deadline/cancellation checkpoint: a countdown so the steady-state
    // cost is one decrement; the clock is read once per interval. The
    // countdown persists across Run() calls (parallel chunk workers
    // call Run once per outer frame), so the interval is a property of
    // the thread's row throughput, not of the frame size.
    if (token_ != nullptr && --token_countdown_ <= 0) {
      token_countdown_ = static_cast<int64_t>(kCancelCheckIntervalRows);
      if (token_->Expired()) {
        status_ = token_->StatusIfDone();
        return false;
      }
    }
    ++counters_->scanned[i];
    const ExecStep& step = plan_.steps[i];
    if (!Apply(step.s, s) || !Apply(step.p, p) || !Apply(step.o, canon_o)) {
      return true;  // repeated-variable mismatch within the pattern
    }
    ++counters_->emitted[i];
    if (static_cast<ptrdiff_t>(i) == plan_.filter_step) {
      Result<bool> keep = EvalCompiledFilter(store_, plan_, slots_, counters_);
      if (!keep.ok()) {
        status_ = keep.status();
        return false;
      }
      if (!*keep) return true;
    }
    if (i == last_) {
      if (!(*sink_)(slots_)) {
        stop_ = true;
        return false;
      }
      return true;
    }
    return Descend(i + 1);
  }

  /// Returns false to unwind (stop or error).
  bool Descend(size_t i) {
    if (leaf_.valid()) return DescendLeaf(i);
    const ExecStep& step = plan_.steps[i];
    source_.Match(Constraint(step.s), Constraint(step.p), Constraint(step.o),
                  [&](const IdTriple& t) {
                    return OnRow(i, t.s, t.p, t.canon_o);
                  });
    return !stop_ && status_.ok();
  }

  /// Leaf fast path: drive this step's scan off the store's id-native
  /// quad cache directly — no virtual Match, no per-row std::function.
  /// Residual checks and scan accounting mirror MatchEachIds exactly:
  /// the store-level rows-scanned metric counts every visited posting
  /// row, while the exec counter (in OnRow) counts rows that survive
  /// the residual constraints.
  /// Minimum driven-list size before a posting-list intersection
  /// gallops instead of residual-filtering (see pair_scan below).
  static constexpr uint32_t kGallopMinDriven = 4096;

  bool DescendLeaf(size_t i) {
    const ExecStep& step = plan_.steps[i];
    const std::optional<ValueId> s = Constraint(step.s);
    const std::optional<ValueId> p = Constraint(step.p);
    const std::optional<ValueId> o = Constraint(step.o);
    const rdf::LinkStore::IdQuad* quads = leaf_.quads();

    // Residual compares double as the tombstone guard: a deleted
    // quad's ids are all -1 and no query carries a negative id.
    auto scan_list = [&](const uint32_t* rows, uint32_t n) {
      uint32_t visited = 0;
      for (uint32_t r = 0; r < n; ++r) {
        const rdf::LinkStore::IdQuad& q = quads[rows[r]];
        ++visited;
        if (s.has_value() && q.s != *s) continue;
        if (p.has_value() && q.p != *p) continue;
        if (o.has_value() && q.canon_o != *o) continue;
        if (!OnRow(i, q.s, q.p, q.canon_o)) break;
      }
      leaf_.CountScanned(visited);
    };

    // Decode one compressed posting list, residual-filtering each quad.
    auto scan_cursor = [&](const rdf::codec::PostingList& list) {
      uint32_t visited = 0;
      list.ForEach([&](uint32_t row) {
        const rdf::LinkStore::IdQuad& q = quads[row];
        ++visited;
        if (s.has_value() && q.s != *s) return true;
        if (p.has_value() && q.p != *p) return true;
        if (o.has_value() && q.canon_o != *o) return true;
        return OnRow(i, q.s, q.p, q.canon_o);
      });
      leaf_.CountScanned(visited);
    };

    // Galloping intersection of two posting lists: drive the shorter,
    // skip the longer via its block index. Worth it only when both
    // lists are non-trivial — a SkipTo decodes up to one 64-entry
    // block, while a residual compare on the driven list is O(1).
    auto gallop = [&](const rdf::codec::PostingList& a_list,
                      const rdf::codec::PostingList& b_list) {
      const bool a_short = a_list.size() <= b_list.size();
      rdf::codec::PostingList::Cursor a(a_short ? a_list : b_list);
      rdf::codec::PostingList::Cursor b(a_short ? b_list : a_list);
      uint32_t visited = 0;
      while (!a.AtEnd() && b.SkipTo(a.Value())) {
        ++visited;
        if (b.Value() == a.Value()) {
          const rdf::LinkStore::IdQuad& q = quads[a.Value()];
          if ((!s.has_value() || q.s == *s) &&
              (!p.has_value() || q.p == *p) &&
              (!o.has_value() || q.canon_o == *o)) {
            if (!OnRow(i, q.s, q.p, q.canon_o)) break;
          }
        }
        a.Next();
      }
      leaf_.CountScanned(visited);
    };

    // Pick the two lists' access path. Posting values are quad
    // indexes, so membership in the longer list is equivalent to a
    // residual field compare on the quad itself — decoding the shorter
    // list and filtering costs one (random) quad load per candidate.
    // Galloping the longer list instead pays a block decode per
    // candidate but skips the quad load on misses, so it only wins
    // when the driven list is big enough for those loads to dominate
    // AND the longer list is sparse relative to it (a dense longer
    // list means near-every candidate hits and the quad gets loaded
    // anyway, making the block decodes pure overhead).
    auto pair_scan = [&](const rdf::codec::PostingList* x,
                         const rdf::codec::PostingList* y) {
      if (x == nullptr || y == nullptr) return;
      const uint32_t short_n = std::min(x->size(), y->size());
      const uint32_t long_n = std::max(x->size(), y->size());
      if (short_n > kGallopMinDriven && long_n / 8 > short_n) {
        gallop(*x, *y);
      } else {
        scan_cursor(x->size() <= y->size() ? *x : *y);
      }
    };

    if (s.has_value() && p.has_value()) {
      rdf::LinkStore::SpMap::Hit hit = leaf_.ProbeSp(*s, *p);
      if (hit.n == 1) {
        // Single-row (s, p) group: the answer is inline in the hash
        // slot — no posting list or quad array touch at all.
        leaf_.CountScanned(1);
        if (!o.has_value() || hit.canon_o == *o) {
          OnRow(i, *s, *p, hit.canon_o);
        }
      } else if (hit.n > 1) {
        scan_list(hit.list, hit.n);
      }
    } else if (s.has_value() && o.has_value()) {
      pair_scan(leaf_.PostingsS(*s), leaf_.PostingsCanon(*o));
    } else if (p.has_value() && o.has_value()) {
      pair_scan(leaf_.PostingsP(*p), leaf_.PostingsCanon(*o));
    } else if (s.has_value()) {
      if (const rdf::codec::PostingList* rows = leaf_.PostingsS(*s)) {
        scan_cursor(*rows);
      }
    } else if (o.has_value()) {
      if (const rdf::codec::PostingList* rows = leaf_.PostingsCanon(*o)) {
        scan_cursor(*rows);
      }
    } else if (p.has_value()) {
      if (const rdf::codec::PostingList* rows = leaf_.PostingsP(*p)) {
        scan_cursor(*rows);
      }
    } else {
      const uint32_t n = leaf_.quad_count();
      uint32_t visited = 0;
      for (uint32_t r = 0; r < n; ++r) {
        const rdf::LinkStore::IdQuad& q = quads[r];
        ++visited;
        if (q.link_id < 0) continue;  // tombstoned
        if (!OnRow(i, q.s, q.p, q.canon_o)) break;
      }
      leaf_.CountScanned(visited);
    }
    return !stop_ && status_.ok();
  }

  const StoreView& store_;
  const CompiledPlan& plan_;
  const TripleSource& source_;
  rdf::LinkStore::LeafScan leaf_;
  ExecCounters* counters_;
  const std::atomic<bool>* cancel_;
  const CancelToken* token_;
  int64_t token_countdown_ =
      static_cast<int64_t>(kCancelCheckIntervalRows);
  ValueId* slots_ = nullptr;
  const SlotRowFn* sink_ = nullptr;
  size_t last_ = 0;
  bool stop_ = false;
  Status status_ = Status::OK();
};

Status ExecuteSequential(const StoreView& store, const CompiledPlan& plan,
                         const TripleSource& source, const SlotRowFn& fn,
                         obs::QueryTrace* trace, const CancelToken* token) {
  ExecCounters counters(plan.steps.size());
  std::vector<ValueId> slots(std::max<size_t>(plan.slot_count(), 1), 0);
  StepRunner runner(store, plan, source, LeafFor(source), &counters, nullptr,
                    token);
  Status status =
      runner.Run(0, plan.steps.size() - 1, slots.data(), fn);
  FlushCounters(trace, plan, counters);
  if (trace != nullptr) trace->exec_threads = 1;
  return status;
}

/// Parallel execution: the outermost step's matches are materialized
/// into flat frames (phase A, sequential), then frame chunks stream the
/// remaining steps on a worker pool while the calling thread consumes
/// chunk results strictly in index order (phase B — the bulk loader's
/// ordered-pipeline shape). Rows therefore reach `fn` in the exact
/// sequential order; DISTINCT/LIMIT applied inside `fn` see the same
/// prefix. When `fn` stops early, workers are cancelled, so scan
/// counters may exceed the sequential run's (whole chunks run to
/// completion); without an early stop they are identical.
Status ExecuteParallel(const StoreView& store, const CompiledPlan& plan,
                       const TripleSource& source, const SlotRowFn& fn,
                       unsigned threads, size_t chunk_frames,
                       obs::QueryTrace* trace, obs::Timeline* timeline,
                       const CancelToken* token) {
  const size_t nslots = plan.slot_count();
  const size_t last = plan.steps.size() - 1;
  const rdf::LinkStore::LeafScan leaf = LeafFor(source);
  ExecCounters counters(plan.steps.size());

  // Phase A: run step 0 alone, collecting binding frames.
  std::vector<ValueId> frames;
  size_t frame_count = 0;
  {
    obs::TimelineScope outer_span(timeline, "outer_scan", "exec", /*lane=*/0);
    std::vector<ValueId> slots(std::max<size_t>(nslots, 1), 0);
    StepRunner outer(store, plan, source, leaf, &counters, nullptr, token);
    Status status = outer.Run(0, 0, slots.data(), [&](const ValueId* s) {
      frames.insert(frames.end(), s, s + nslots);
      ++frame_count;
      return true;
    });
    if (!status.ok()) {
      FlushCounters(trace, plan, counters);
      return status;
    }
  }

  const size_t per_chunk = std::max<size_t>(chunk_frames, 1);
  const size_t chunk_count = (frame_count + per_chunk - 1) / per_chunk;
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads, chunk_count));
  if (trace != nullptr) {
    trace->exec_threads = std::max<unsigned>(workers, 1);
    trace->exec_chunks = chunk_count;
  }

  struct ChunkOut {
    std::vector<ValueId> solutions;  ///< frame-major, nslots each
    size_t count = 0;  ///< solution frames (solutions.size() / nslots,
                       ///< tracked separately so nslots == 0 still works)
    ExecCounters counters;
    unsigned worker = 0;   ///< 1-based lane that joined this chunk
    int64_t busy_ns = 0;   ///< wall time of the chunk join
    int64_t cpu_ns = 0;        ///< worker-thread CPU time of the join
    uint64_t alloc_bytes = 0;  ///< heap bytes the join allocated
    uint64_t allocs = 0;       ///< allocation count of the join
  };
  std::atomic<bool> cancel{false};

  auto produce = [&](size_t k, unsigned worker) -> Result<ChunkOut> {
    obs::TimelineScope chunk_span(
        timeline, "chunk_join", "exec", worker,
        timeline != nullptr ? "chunk=" + std::to_string(k) : std::string());
    Timer busy_timer;
    // Per-chunk resource scope: deltas of this worker thread's CPU and
    // allocation counters, merged on the consumer (below) so per-query
    // attribution covers worker threads, not just the calling thread.
    obs::ResourceScope chunk_scope("exec_chunk");
    obs::ActiveOpGuard active_op(obs::OpKind::kExecWorker,
                                 "chunk " + std::to_string(k));
    ChunkOut out{{}, 0, ExecCounters(plan.steps.size()), worker, 0};
    std::vector<ValueId> slots(std::max<size_t>(nslots, 1), 0);
    StepRunner runner(store, plan, source, leaf, &out.counters, &cancel,
                      token);
    const size_t begin = k * per_chunk;
    const size_t end = std::min(begin + per_chunk, frame_count);
    for (size_t f = begin; f < end; ++f) {
      if (cancel.load(std::memory_order_relaxed)) break;
      std::copy(frames.begin() + static_cast<ptrdiff_t>(f * nslots),
                frames.begin() + static_cast<ptrdiff_t>((f + 1) * nslots),
                slots.begin());
      Status status =
          runner.Run(1, last, slots.data(), [&](const ValueId* s) {
            out.solutions.insert(out.solutions.end(), s, s + nslots);
            ++out.count;
            return true;
          });
      if (!status.ok()) return status;
    }
    out.busy_ns = busy_timer.ElapsedNanos();
    const obs::ResourceUsage usage = chunk_scope.Usage();
    out.cpu_ns = usage.cpu_ns;
    out.alloc_bytes = usage.bytes_allocated;
    out.allocs = usage.allocations;
    return out;
  };

  // Per-worker accumulators, merged on the consumer thread only.
  std::vector<obs::ExecWorkerTrace> worker_acc(std::max<unsigned>(workers, 1));

  // Consume: merge a chunk's counters, then emit its rows in order.
  // Returns false to stop the whole run.
  uint64_t worker_allocs = 0;  // consumer-thread accumulator

  auto consume = [&](ChunkOut&& chunk) {
    counters.MergeFrom(chunk.counters);
    if (chunk.worker >= 1 && chunk.worker <= worker_acc.size()) {
      obs::ExecWorkerTrace& w = worker_acc[chunk.worker - 1];
      w.worker = chunk.worker;
      ++w.chunks;
      w.rows_emitted += chunk.count;
      w.busy_ns += chunk.busy_ns;
      w.cpu_ns += chunk.cpu_ns;
      w.bytes_allocated += chunk.alloc_bytes;
      worker_allocs += chunk.allocs;
    }
    for (size_t f = 0; f < chunk.count; ++f) {
      if (!fn(chunk.solutions.data() + f * nslots)) return false;
    }
    return true;
  };

  auto flush_workers = [&] {
    if (trace == nullptr) return;
    for (const obs::ExecWorkerTrace& w : worker_acc) {
      if (w.chunks > 0) {
        // Worker resource deltas fold into the query totals here; the
        // calling thread's own scope is added by the match layer.
        trace->cpu_ns += w.cpu_ns;
        trace->bytes_allocated += w.bytes_allocated;
        trace->exec_workers.push_back(w);
      }
    }
    trace->allocations += worker_allocs;
  };

  Status status = Status::OK();
  if (workers <= 1 || chunk_count <= 1) {
    for (size_t k = 0; k < chunk_count; ++k) {
      if (token != nullptr && token->Expired()) {
        status = token->StatusIfDone();
        break;
      }
      Result<ChunkOut> chunk = produce(k, /*worker=*/1);
      if (!chunk.ok()) {
        status = chunk.status();
        break;
      }
      if (!consume(std::move(*chunk))) break;
    }
    flush_workers();
    FlushCounters(trace, plan, counters);
    return status;
  }

  // Bounded ordered pipeline (the bulk loader's shape): workers claim
  // chunk indexes within a window ahead of the consumer; the calling
  // thread consumes strictly in order.
  const size_t window = 2 * static_cast<size_t>(workers) + 2;
  std::vector<std::optional<Result<ChunkOut>>> slots_q(chunk_count);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<size_t> next_chunk{0};
  size_t consumed = 0;     // guarded by mu
  bool cancelled = false;  // guarded by mu

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (;;) {
        size_t k = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (k >= chunk_count) return;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return cancelled || k < consumed + window; });
          if (cancelled) return;
        }
        Result<ChunkOut> result = produce(k, w + 1);
        {
          std::lock_guard<std::mutex> lock(mu);
          slots_q[k] = std::move(result);
        }
        cv.notify_all();
      }
    });
  }

  for (size_t k = 0; k < chunk_count; ++k) {
    std::optional<Result<ChunkOut>> chunk;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return slots_q[k].has_value(); });
      chunk = std::move(slots_q[k]);
      slots_q[k].reset();
      consumed = k + 1;
    }
    cv.notify_all();
    if (!chunk->ok()) {
      status = chunk->status();
      break;
    }
    // A fired token also stops *delivery*: workers stop producing at
    // their own checkpoints, but chunks completed before the token
    // fired are already queued, and draining them to the callback can
    // dwarf the producers' overshoot. Checking here bounds post-cancel
    // delivery to the one chunk being consumed.
    if (token != nullptr && token->Expired()) {
      status = token->StatusIfDone();
      cancel.store(true, std::memory_order_relaxed);
      break;
    }
    if (!consume(std::move(**chunk))) {
      cancel.store(true, std::memory_order_relaxed);
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    cancelled = true;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();

  flush_workers();
  FlushCounters(trace, plan, counters);
  return status;
}

}  // namespace

ResolvedNode ResolveNode(const StoreView& store, const PatternNode& node,
                         bool object_position, obs::QueryTrace* trace) {
  ResolvedNode out;
  if (node.is_variable) {
    out.is_var = true;
    out.var = node.variable;
    return out;
  }
  Term term = object_position ? rdf::CanonicalForm(node.term) : node.term;
  if (term.is_blank()) {
    // Blank-node constants in patterns are not addressable (labels are
    // model-scoped); treat as unresolvable.
    out.missing = true;
    return out;
  }
  if (trace != nullptr) ++trace->value_lookups;
  std::optional<ValueId> id = store.LookupValue(term);
  if (!id.has_value()) {
    if (trace != nullptr) ++trace->value_lookup_misses;
    out.missing = true;
    return out;
  }
  out.id = *id;
  return out;
}

std::vector<size_t> OrderResolvedPatterns(
    const std::vector<TriplePattern>& patterns,
    const std::vector<ResolvedPattern>& resolved,
    const TripleSource& source) {
  // Bounded candidate count per pattern using only its constants. The
  // cap keeps planning cost negligible; distinguishing "1 row" from
  // "over a hundred" is all the ordering needs.
  constexpr size_t kCountCap = 128;
  std::vector<size_t> estimate(patterns.size(), 0);
  for (size_t i = 0; i < patterns.size(); ++i) {
    const ResolvedPattern& rp = resolved[i];
    if (rp.s.missing || rp.p.missing || rp.o.missing) {
      estimate[i] = 0;  // dead pattern: zero rows, run it first
      continue;
    }
    auto constraint = [](const ResolvedNode& n) -> std::optional<ValueId> {
      if (n.is_var) return std::nullopt;
      return n.id;
    };
    size_t n = 0;
    source.Match(constraint(rp.s), constraint(rp.p), constraint(rp.o),
                 [&](const IdTriple&) { return ++n < kCountCap; });
    estimate[i] = n;
  }

  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::set<std::string> bound;
  for (size_t step = 0; step < patterns.size(); ++step) {
    // Prefer patterns connected to the bound set; among those (or among
    // all, at step 0 / when none connect), pick the smallest estimate.
    ptrdiff_t best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const std::string& var : patterns[i].Variables()) {
        if (bound.count(var) > 0) connected = true;
      }
      if (best < 0 ||
          (connected && !best_connected) ||
          (connected == best_connected &&
           estimate[i] < estimate[static_cast<size_t>(best)])) {
        best = static_cast<ptrdiff_t>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
    for (const std::string& var :
         patterns[static_cast<size_t>(best)].Variables()) {
      bound.insert(var);
    }
  }
  return order;
}

SlotIndex CompiledPlan::SlotOf(const std::string& var) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == var) return static_cast<SlotIndex>(i);
  }
  return -1;
}

CompiledPlan CompilePatterns(const StoreView& store,
                             const std::vector<TriplePattern>& patterns,
                             const FilterExpr* filter,
                             const TripleSource& source,
                             bool reorder_patterns, obs::QueryTrace* trace) {
  CompiledPlan plan;
  plan.trace_base = trace != nullptr ? trace->patterns.size() : 0;

  // Resolve every constant exactly once (traced — these are the only
  // rdf_value$ probes the whole query makes) and reuse the resolutions
  // for the planner's cardinality estimates.
  std::vector<ResolvedPattern> resolved(patterns.size());
  {
    obs::ScopedSpan plan_span(trace != nullptr ? &trace->plan_ns : nullptr);
    for (size_t i = 0; i < patterns.size(); ++i) {
      ResolvedNode* nodes[3] = {&resolved[i].s, &resolved[i].p,
                                &resolved[i].o};
      for (size_t pos = 0; pos < 3; ++pos) {
        *nodes[pos] = ResolveNode(store, patterns[i].Position(pos),
                                  /*object_position=*/pos == 2, trace);
      }
    }
    if (reorder_patterns) {
      plan.order = OrderResolvedPatterns(patterns, resolved, source);
    } else {
      for (size_t i = 0; i < patterns.size(); ++i) plan.order.push_back(i);
    }
  }
  if (trace != nullptr) {
    trace->plan_order = plan.order;
    trace->reordered = reorder_patterns;
  }

  // Slot assignment and step compilation, in execution order. A dead
  // pattern (unresolvable constant) truncates the plan — its trace
  // entry stays at zero scanned/emitted and execution emits no rows.
  std::unordered_map<std::string, SlotIndex> slot_of;
  std::vector<size_t> slot_bound_at;  // slot -> binding step
  for (size_t exec_idx = 0; exec_idx < plan.order.size(); ++exec_idx) {
    const size_t index = plan.order[exec_idx];
    const TriplePattern& pattern = patterns[index];
    const ResolvedPattern& rp = resolved[index];
    if (trace != nullptr) {
      obs::PatternTrace pt;
      pt.pattern_index = index;
      pt.text = pattern.ToString();
      trace->patterns.push_back(std::move(pt));
    }
    if (rp.s.missing || rp.p.missing || rp.o.missing) {
      plan.dead = true;
      if (trace != nullptr) trace->dead_constant = true;
      break;
    }
    ExecStep step;
    step.pattern_index = index;
    const size_t slots_before = plan.vars.size();
    auto compile_pos = [&](const ResolvedNode& node) {
      ExecPos pos;
      if (!node.is_var) {
        pos.kind = ExecPos::Kind::kConst;
        pos.id = node.id;
        return pos;
      }
      auto [it, inserted] = slot_of.try_emplace(
          node.var, static_cast<SlotIndex>(plan.vars.size()));
      pos.slot = it->second;
      if (inserted) {
        pos.kind = ExecPos::Kind::kBind;
        plan.vars.push_back(node.var);
        slot_bound_at.push_back(exec_idx);
      } else if (static_cast<size_t>(it->second) >= slots_before) {
        // Second occurrence within this same pattern: the scan cannot
        // constrain on it, so compare against the just-bound slot.
        pos.kind = ExecPos::Kind::kCheck;
      } else {
        pos.kind = ExecPos::Kind::kProbe;
      }
      return pos;
    };
    step.s = compile_pos(rp.s);
    step.p = compile_pos(rp.p);
    step.o = compile_pos(rp.o);
    plan.steps.push_back(step);
  }

  // Filter placement: the earliest step after which every filter
  // variable that occurs in the query is bound (variables the query
  // never binds stay unbound — comparisons against them are false).
  if (filter != nullptr && !filter->IsAlwaysTrue()) {
    plan.filter = filter;
    std::set<std::string> filter_var_names;
    filter->CollectVariables(&filter_var_names);
    ptrdiff_t at = -1;
    for (const std::string& name : filter_var_names) {
      auto it = slot_of.find(name);
      if (it == slot_of.end()) continue;
      plan.filter_vars.emplace_back(name, it->second);
      at = std::max(
          at, static_cast<ptrdiff_t>(
                  slot_bound_at[static_cast<size_t>(it->second)]));
    }
    if (!plan.steps.empty()) {
      plan.filter_step =
          at >= 0 ? at : static_cast<ptrdiff_t>(plan.steps.size()) - 1;
    }
  }
  return plan;
}

Status ExecutePlan(const StoreView& store, const CompiledPlan& plan,
                   const TripleSource& source, const SlotRowFn& fn,
                   const ExecOptions& options) {
  obs::QueryTrace* trace = options.trace;
  if (plan.dead) return Status::OK();
  if (plan.steps.empty()) {
    // Zero patterns: a single empty solution (the filter may still
    // reject it; with no bound variables every comparison on a
    // variable is false).
    ExecCounters counters(0);
    bool keep = true;
    if (plan.filter != nullptr) {
      ValueId none = 0;
      RDFDB_ASSIGN_OR_RETURN(
          keep, EvalCompiledFilter(store, plan, &none, &counters));
    }
    if (keep) fn(nullptr);
    FlushCounters(trace, plan, counters);
    return Status::OK();
  }
  if (options.cancel != nullptr && options.cancel->Expired()) {
    // Fired before any work (e.g. the request sat in the admission
    // queue past its deadline): fail without touching the store.
    return options.cancel->StatusIfDone();
  }
  const unsigned threads = EffectiveThreads(options.threads);
  if (threads > 1 && plan.steps.size() >= 2) {
    return ExecuteParallel(store, plan, source, fn, threads,
                           options.chunk_frames, trace, options.timeline,
                           options.cancel);
  }
  return ExecuteSequential(store, plan, source, fn, trace, options.cancel);
}

}  // namespace rdfdb::query
