#include "query/rules_index.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "obs/store_metrics.h"
#include "query/exec.h"
#include "rdf/canonical.h"

namespace rdfdb::query {

namespace {

using rdf::ModelId;
using rdf::RdfStore;
using rdf::Term;
using rdf::ValueId;

/// Metric-name fragment: anything outside [A-Za-z0-9_] becomes '_'
/// (rule names are free-form text; Prometheus names are not).
std::string SanitizeMetricPart(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// True if the source already holds a triple with this subject,
/// predicate and canonical object.
bool ContainsCanon(const TripleSource& source, ValueId s, ValueId p,
                   ValueId canon_o) {
  bool found = false;
  source.Match(s, p, canon_o, [&](const IdTriple&) {
    found = true;
    return false;
  });
  return found;
}

}  // namespace

uint64_t TripleSet::Key(ValueId s, ValueId p, ValueId o) {
  uint64_t h = HashCombine(0x9d7f3aULL, static_cast<uint64_t>(s));
  h = HashCombine(h, static_cast<uint64_t>(p));
  h = HashCombine(h, static_cast<uint64_t>(o));
  return h;
}

bool TripleSet::Add(const IdTriple& triple) {
  uint64_t key = Key(triple.s, triple.p, triple.o);
  if (seen_.count(key) > 0) {
    // Verify on hash hit (collisions are possible in principle).
    bool exists = false;
    auto range = by_s_.equal_range(triple.s);
    for (auto it = range.first; it != range.second; ++it) {
      if (triples_[it->second] == triple) {
        exists = true;
        break;
      }
    }
    if (exists) return false;
  }
  size_t idx = triples_.size();
  triples_.push_back(triple);
  seen_.insert(key);
  by_s_.emplace(triple.s, idx);
  by_p_.emplace(triple.p, idx);
  by_canon_o_.emplace(triple.canon_o, idx);
  return true;
}

bool TripleSet::Contains(ValueId s, ValueId p, ValueId o) const {
  auto range = by_s_.equal_range(s);
  for (auto it = range.first; it != range.second; ++it) {
    const IdTriple& t = triples_[it->second];
    if (t.p == p && t.o == o) return true;
  }
  return false;
}

void TripleSet::Match(std::optional<ValueId> s, std::optional<ValueId> p,
                      std::optional<ValueId> canon_o,
                      const std::function<bool(const IdTriple&)>& fn) const {
  auto emit = [&](size_t idx) {
    const IdTriple& t = triples_[idx];
    if (s.has_value() && t.s != *s) return true;
    if (p.has_value() && t.p != *p) return true;
    if (canon_o.has_value() && t.canon_o != *canon_o) return true;
    return fn(t);
  };
  if (s.has_value()) {
    auto range = by_s_.equal_range(*s);
    for (auto it = range.first; it != range.second; ++it) {
      if (!emit(it->second)) return;
    }
    return;
  }
  if (canon_o.has_value()) {
    auto range = by_canon_o_.equal_range(*canon_o);
    for (auto it = range.first; it != range.second; ++it) {
      if (!emit(it->second)) return;
    }
    return;
  }
  if (p.has_value()) {
    auto range = by_p_.equal_range(*p);
    for (auto it = range.first; it != range.second; ++it) {
      if (!emit(it->second)) return;
    }
    return;
  }
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (!emit(i)) return;
  }
}

void ModelSource::Match(std::optional<ValueId> s, std::optional<ValueId> p,
                        std::optional<ValueId> canon_o,
                        const std::function<bool(const IdTriple&)>& fn)
    const {
  for (ModelId model : models_) {
    bool keep_going = true;
    // Id-only scan: the join only consumes VALUE_IDs, so skip the
    // LinkRow materialization (string columns) per matched row.
    store_->MatchEachIds(
        model, s, p, canon_o,
        [&](ValueId ts, ValueId tp, ValueId to, ValueId tco) {
          keep_going = fn(IdTriple{ts, tp, to, tco});
          return keep_going;
        });
    if (!keep_going) return;
  }
}

rdf::LinkStore::LeafScan ModelSource::DirectLeaf() const {
  if (models_.size() != 1) return {};
  return store_->Leaf(models_.front());
}

void UnionSource::Match(std::optional<ValueId> s, std::optional<ValueId> p,
                        std::optional<ValueId> canon_o,
                        const std::function<bool(const IdTriple&)>& fn)
    const {
  for (const TripleSource* source : sources_) {
    bool keep_going = true;
    source->Match(s, p, canon_o, [&](const IdTriple& t) {
      keep_going = fn(t);
      return keep_going;
    });
    if (!keep_going) return;
  }
}

std::vector<size_t> PlanPatternOrder(
    const std::vector<TriplePattern>& patterns) {
  // Greedy selectivity order: prefer patterns with many constants and
  // with variables already bound by earlier picks (so every step is a
  // join, not a cross product). Subject/object constants weigh more
  // than predicate constants (predicates are typically low-selectivity).
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::set<std::string> bound;
  for (size_t step = 0; step < patterns.size(); ++step) {
    int best_score = -1;
    size_t best = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      const TriplePattern& p = patterns[i];
      int score = 0;
      if (!p.subject.is_variable) score += 4;
      if (!p.object.is_variable) score += 4;
      if (!p.predicate.is_variable) score += 1;
      for (const std::string& var : p.Variables()) {
        if (bound.count(var) > 0) score += 3;
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const std::string& var : patterns[best].Variables()) {
      bound.insert(var);
    }
  }
  return order;
}

std::vector<size_t> PlanPatternOrderForSource(
    const rdf::StoreView& store, const std::vector<TriplePattern>& patterns,
    const TripleSource& source) {
  // Untraced resolution (this entry point is advisory — the compiled
  // path resolves once, traced, inside CompilePatterns and shares the
  // same ordering function).
  std::vector<ResolvedPattern> resolved(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    resolved[i].s = ResolveNode(store, patterns[i].subject, false);
    resolved[i].p = ResolveNode(store, patterns[i].predicate, false);
    resolved[i].o = ResolveNode(store, patterns[i].object, true);
  }
  return OrderResolvedPatterns(patterns, resolved, source);
}

namespace {

/// The original materializing join, kept verbatim as the differential
/// oracle for the compiled executor (EvalOptions::use_legacy). Joins by
/// copying a full binding map per consistent candidate row and
/// materializes every intermediate relation.
Status EvalPatternsLegacy(const rdf::StoreView& store,
                          const std::vector<TriplePattern>& patterns,
                          const FilterExpr* filter,
                          const TripleSource& source,
                          const std::function<bool(const IdBindings&)>& fn,
                          const EvalOptions& options) {
  obs::QueryTrace* trace = options.trace;
  std::vector<size_t> order;
  {
    obs::ScopedSpan plan_span(trace != nullptr ? &trace->plan_ns : nullptr);
    if (options.reorder_patterns) {
      order = PlanPatternOrderForSource(store, patterns, source);
    } else {
      for (size_t i = 0; i < patterns.size(); ++i) order.push_back(i);
    }
  }
  if (trace != nullptr) {
    trace->plan_order = order;
    trace->reordered = options.reorder_patterns;
  }
  // Trace entries this call appends start here (the trace may already
  // hold entries from an earlier EvalPatterns over the same trace).
  const size_t trace_base = trace != nullptr ? trace->patterns.size() : 0;

  // Resolve all constants up front, in execution order.
  struct ExecPattern {
    ResolvedNode s, p, o;
  };
  std::vector<ExecPattern> exec;
  exec.reserve(patterns.size());
  for (size_t index : order) {
    const TriplePattern& pattern = patterns[index];
    if (trace != nullptr) {
      obs::PatternTrace pt;
      pt.pattern_index = index;
      pt.text = pattern.ToString();
      trace->patterns.push_back(std::move(pt));
    }
    ExecPattern ep;
    ep.s = ResolveNode(store, pattern.subject, /*object_position=*/false,
                       trace);
    ep.p = ResolveNode(store, pattern.predicate, /*object_position=*/false,
                       trace);
    ep.o = ResolveNode(store, pattern.object, /*object_position=*/true,
                       trace);
    if (ep.s.missing || ep.p.missing || ep.o.missing) {
      // A constant the store has never seen: no rows. The pattern's
      // trace entry stays at zero scanned/emitted.
      if (trace != nullptr) trace->dead_constant = true;
      return Status::OK();
    }
    exec.push_back(std::move(ep));
  }

  // Left-to-right join. Variables bind subject/predicate positions to the
  // triple's s/p ids and object positions to the *canonical* object id,
  // so equal RDF values join regardless of lexical form.
  std::vector<IdBindings> current;
  current.emplace_back();
  for (size_t step = 0; step < exec.size(); ++step) {
    const ExecPattern& ep = exec[step];
    size_t scanned = 0;
    std::vector<IdBindings> next;
    for (const IdBindings& binding : current) {
      if (options.cancel != nullptr && options.cancel->Expired()) {
        return options.cancel->StatusIfDone();
      }
      auto constraint =
          [&](const ResolvedNode& node) -> std::optional<ValueId> {
        if (!node.is_var) return node.id;
        auto it = binding.find(node.var);
        if (it != binding.end()) return it->second;
        return std::nullopt;
      };
      std::optional<ValueId> cs = constraint(ep.s);
      std::optional<ValueId> cp = constraint(ep.p);
      std::optional<ValueId> co = constraint(ep.o);
      source.Match(cs, cp, co, [&](const IdTriple& t) {
        ++scanned;
        // Probe first, copy on success: collect the row's variable
        // values and check consistency (a variable repeated within the
        // pattern, or already bound) before paying for the map copy.
        const ResolvedNode* nodes[3] = {&ep.s, &ep.p, &ep.o};
        const ValueId values[3] = {t.s, t.p, t.canon_o};
        const std::string* fresh_vars[3];
        ValueId fresh_values[3];
        size_t fresh = 0;
        for (size_t pos = 0; pos < 3; ++pos) {
          if (!nodes[pos]->is_var) continue;
          const std::string& var = nodes[pos]->var;
          auto it = binding.find(var);
          if (it != binding.end()) {
            if (it->second != values[pos]) return true;
            continue;
          }
          bool dup = false;
          for (size_t f = 0; f < fresh; ++f) {
            if (*fresh_vars[f] == var) {
              if (fresh_values[f] != values[pos]) return true;
              dup = true;
              break;
            }
          }
          if (dup) continue;
          fresh_vars[fresh] = &var;
          fresh_values[fresh] = values[pos];
          ++fresh;
        }
        IdBindings extended = binding;
        for (size_t f = 0; f < fresh; ++f) {
          extended.emplace(*fresh_vars[f], fresh_values[f]);
        }
        next.push_back(std::move(extended));
        return true;
      });
    }
    if (trace != nullptr) {
      trace->patterns[trace_base + step].rows_scanned = scanned;
      trace->patterns[trace_base + step].rows_emitted = next.size();
    }
    current = std::move(next);
    if (current.empty()) return Status::OK();
  }

  for (const IdBindings& binding : current) {
    if (filter != nullptr) {
      if (trace != nullptr) ++trace->filter_evaluations;
      Bindings term_bindings;
      for (const auto& [var, id] : binding) {
        auto term = store.TermForValueId(id);
        if (!term.ok()) return term.status();
        term_bindings.emplace(var, std::move(term).value());
      }
      if (trace != nullptr) trace->value_resolutions += binding.size();
      if (!filter->Evaluate(term_bindings)) {
        if (trace != nullptr) ++trace->filter_rejections;
        continue;
      }
    }
    if (!fn(binding)) break;
  }
  return Status::OK();
}

}  // namespace

Status EvalPatterns(const rdf::StoreView& store,
                    const std::vector<TriplePattern>& patterns,
                    const FilterExpr* filter, const TripleSource& source,
                    const std::function<bool(const IdBindings&)>& fn,
                    const EvalOptions& options) {
  // The always-true filter can never reject a row; dropping it here
  // skips the per-row term materialisation the filter loop would do.
  if (filter != nullptr && filter->IsAlwaysTrue()) filter = nullptr;
  if (options.use_legacy) {
    return EvalPatternsLegacy(store, patterns, filter, source, fn, options);
  }

  CompiledPlan plan =
      CompilePatterns(store, patterns, filter, source,
                      options.reorder_patterns, options.trace);
  ExecOptions exec_options;
  exec_options.threads = options.threads;
  exec_options.chunk_frames = options.chunk_frames;
  exec_options.trace = options.trace;
  exec_options.cancel = options.cancel;
  const size_t slot_count = plan.slot_count();
  return ExecutePlan(
      store, plan, source,
      [&](const ValueId* slots) {
        IdBindings binding;
        for (size_t i = 0; i < slot_count; ++i) {
          binding.emplace(plan.vars[i], slots[i]);
        }
        return fn(binding);
      },
      exec_options);
}

Result<TripleSet> ComputeEntailment(
    RdfStore* store, const TripleSource& base,
    const std::vector<const Rulebase*>& rulebases, size_t* rounds_out) {
  // Pre-parse every rule once; each rule gets a per-rule derivation
  // counter in the store's registry (registration is idempotent, so
  // repeated entailments over the same rulebases reuse one counter).
  obs::StoreMetrics* metrics = store->metrics();
  struct CompiledRule {
    std::vector<TriplePattern> antecedent;
    FilterPtr filter;
    TriplePattern consequent;
    obs::Counter* derived = nullptr;  ///< solutions produced (pre-dedup)
  };
  std::vector<CompiledRule> compiled;
  for (const Rulebase* rb : rulebases) {
    for (const Rule& rule : rb->rules()) {
      CompiledRule cr;
      RDFDB_ASSIGN_OR_RETURN(cr.antecedent,
                             ParsePatterns(rule.antecedent, rule.aliases));
      RDFDB_ASSIGN_OR_RETURN(cr.filter, ParseFilter(rule.filter));
      RDFDB_ASSIGN_OR_RETURN(std::vector<TriplePattern> cons,
                             ParsePatterns(rule.consequent, rule.aliases));
      cr.consequent = cons.front();
      if (metrics != nullptr) {
        cr.derived = metrics->registry->RegisterCounter(
            "rdfdb_inference_rule_" +
                SanitizeMetricPart(rb->name() + "_" + rule.name) +
                "_derived_total",
            "Consequent instantiations by rule " + rb->name() + ":" +
                rule.name + " before deduplication");
      }
      compiled.push_back(std::move(cr));
    }
  }

  TripleSet inferred;
  size_t rounds = 0;
  bool changed = true;
  obs::Timeline* timeline = store->timeline();
  while (changed) {
    changed = false;
    ++rounds;
    // One span per fixpoint round on lane 0 — the trace export shows
    // the convergence shape (rounds shrink as fewer triples are new).
    obs::TimelineScope round_span(
        timeline, "entailment_round", "infer", /*lane=*/0,
        timeline != nullptr ? "round=" + std::to_string(rounds)
                            : std::string());
    UnionSource all({&base, &inferred});
    std::vector<IdTriple> pending;

    for (const CompiledRule& rule : compiled) {
      Status status = EvalPatterns(
          *store, rule.antecedent, rule.filter.get(), all,
          [&](const IdBindings& binding) {
            // Instantiate the consequent.
            auto instantiate =
                [&](const PatternNode& node,
                    bool object_position) -> Result<ValueId> {
              if (node.is_variable) {
                return binding.at(node.variable);
              }
              Term term = object_position ? rdf::CanonicalForm(node.term)
                                          : node.term;
              return store->values().LookupOrInsert(term);
            };
            auto s = instantiate(rule.consequent.subject, false);
            auto p = instantiate(rule.consequent.predicate, false);
            auto o = instantiate(rule.consequent.object, true);
            if (!s.ok() || !p.ok() || !o.ok()) return true;

            // Consequent subjects must be resources; a rule like rdfs3
            // can bind ?y to a literal — skip those solutions.
            auto s_code = store->values().GetTypeCode(*s);
            if (!s_code.ok() ||
                (*s_code != "UR" && *s_code != "BN")) {
              return true;
            }
            // Predicates must be URIs.
            auto p_code = store->values().GetTypeCode(*p);
            if (!p_code.ok() || *p_code != "UR") return true;

            pending.push_back(IdTriple{*s, *p, *o, *o});
            if (rule.derived != nullptr) rule.derived->Inc();
            return true;
          });
      RDFDB_RETURN_NOT_OK(status);
    }

    for (const IdTriple& t : pending) {
      if (ContainsCanon(base, t.s, t.p, t.canon_o)) continue;
      if (inferred.Add(t)) changed = true;
    }
  }
  if (metrics != nullptr) {
    metrics->inference_rounds->Inc(rounds);
    metrics->inference_derived->Inc(inferred.size());
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return inferred;
}

Result<std::unique_ptr<RulesIndex>> RulesIndex::Build(
    RdfStore* store, const std::string& index_name,
    const std::vector<std::string>& model_names,
    const std::vector<const Rulebase*>& rulebases) {
  std::vector<ModelId> model_ids;
  for (const std::string& name : model_names) {
    RDFDB_ASSIGN_OR_RETURN(ModelId id, store->GetModelId(name));
    model_ids.push_back(id);
  }
  ModelSource base(store, model_ids);

  auto index = std::unique_ptr<RulesIndex>(new RulesIndex());
  index->name_ = index_name;
  index->model_names_ = model_names;
  index->rulebase_names_.reserve(rulebases.size());
  for (const Rulebase* rb : rulebases) {
    index->rulebase_names_.push_back(rb->name());
  }
  RDFDB_ASSIGN_OR_RETURN(
      index->inferred_,
      ComputeEntailment(store, base, rulebases, &index->rounds_));

  // Persist the pre-computed triples, as CREATE_RULES_INDEX does.
  std::string table_name = "RDFI_" + index_name;
  storage::Database& db = store->database();
  if (db.GetTable("MDSYS", table_name) != nullptr) {
    RDFDB_RETURN_NOT_OK(db.DropTable("MDSYS", table_name));
  }
  auto table = db.CreateTable(
      "MDSYS", table_name,
      storage::Schema({
          {"S_ID", storage::ValueType::kInt64, false},
          {"P_ID", storage::ValueType::kInt64, false},
          {"O_ID", storage::ValueType::kInt64, false},
      }));
  if (!table.ok()) return table.status();
  for (const IdTriple& t : index->inferred_.triples()) {
    auto insert = (*table)->Insert({storage::Value::Int64(t.s),
                                    storage::Value::Int64(t.p),
                                    storage::Value::Int64(t.o)});
    if (!insert.ok()) return insert.status();
  }
  return index;
}

bool RulesIndex::Covers(const std::vector<std::string>& model_names,
                        const std::vector<std::string>& rulebase_names)
    const {
  auto sorted = [](std::vector<std::string> v) {
    for (std::string& s : v) {
      std::transform(s.begin(), s.end(), s.begin(), ::toupper);
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  return sorted(model_names_) == sorted(model_names) &&
         sorted(rulebase_names_) == sorted(rulebase_names);
}

}  // namespace rdfdb::query
