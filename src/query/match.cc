#include "query/match.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/hash.h"
#include "common/timer.h"
#include "obs/active_ops.h"
#include "obs/resource_tracker.h"
#include "obs/store_metrics.h"
#include "query/exec.h"
#include "query/filter.h"
#include "query/rules_index.h"

namespace rdfdb::query {

namespace {

/// Hash for a row of bound VALUE_IDs (the DISTINCT key).
struct IdRowHash {
  size_t operator()(const std::vector<rdf::ValueId>& row) const {
    uint64_t h = 0;
    for (rdf::ValueId id : row) {
      h = HashCombine(h, static_cast<uint64_t>(id));
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

int MatchResult::ColumnIndex(const std::string& name) const {
  if (column_index_.size() != columns_.size()) {
    column_index_.clear();
    for (size_t i = 0; i < columns_.size(); ++i) {
      column_index_.emplace(columns_[i], static_cast<int>(i));
    }
  }
  auto it = column_index_.find(name);
  return it == column_index_.end() ? -1 : it->second;
}

std::string MatchResult::Get(size_t row, const std::string& name) const {
  int col = ColumnIndex(name);
  if (col < 0 || row >= rows_.size()) return "";
  return rows_[row][static_cast<size_t>(col)].ToDisplayString();
}

std::string MatchResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += "\t";
    out += "?" + columns_[i];
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "\t";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

namespace {

/// Shared match core. `store` is the read surface every lookup runs
/// against (the live store, or a pinned StoreVersion); `mutable_store`
/// is only needed by on-the-fly entailment (interning rule
/// consequents) and is null on the snapshot path.
Result<MatchResult> MatchImpl(const rdf::StoreView& store,
                              rdf::RdfStore* mutable_store,
                              InferenceEngine* engine,
                              const std::string& query,
                              const std::vector<std::string>& model_names,
                              const std::vector<std::string>& rulebase_names,
                              const AliasList& aliases,
                              const std::string& filter,
                              const MatchOptions& options) {
  obs::QueryTrace* trace = options.trace;
  // Slow-query capture: when a log is attached and the caller didn't
  // ask for a trace, trace into a stack frame — fast queries then pay
  // only the tracing counters; the lock/copy happens solely for queries
  // that cross the threshold (below).
  obs::SlowQueryLog* slow_log = store.slow_query_log();
  obs::QueryTrace local_trace;
  if (trace == nullptr && slow_log != nullptr) trace = &local_trace;
  if (trace != nullptr) *trace = obs::QueryTrace{};
  Timer total_timer;
  // Per-query resource attribution: the calling thread's CPU and heap
  // deltas; parallel workers contribute their own chunk-scope deltas
  // via the trace (query/exec.cc flush_workers).
  obs::ResourceScope query_scope("query");
  // /activityz registration: the pattern text is the op detail, so a
  // stuck or crashed query is identifiable from the slot table alone.
  obs::ActiveOpGuard active_op(obs::OpKind::kQuery, query);
  obs::StoreMetrics* metrics = store.metrics();
  obs::TimelineScope query_span(store.timeline(), "query", "query",
                                /*lane=*/0);

  if (model_names.empty()) {
    return Status::InvalidArgument("SDO_RDF_MATCH needs at least one model");
  }
  std::vector<TriplePattern> patterns;
  FilterPtr compiled_filter;
  {
    obs::ScopedSpan parse_span(trace != nullptr ? &trace->parse_ns
                                                : nullptr);
    RDFDB_ASSIGN_OR_RETURN(patterns, ParsePatterns(query, aliases));
    RDFDB_ASSIGN_OR_RETURN(compiled_filter, ParseFilter(filter));
  }

  std::vector<rdf::ModelId> model_ids;
  for (const std::string& name : model_names) {
    RDFDB_ASSIGN_OR_RETURN(rdf::ModelId id, store.GetModelId(name));
    model_ids.push_back(id);
  }
  ModelSource base(&store, model_ids);

  // Inference source: a covering pre-computed rules index if one exists,
  // otherwise on-the-fly entailment.
  TripleSet on_the_fly;
  const TripleSet* inferred = nullptr;
  if (!rulebase_names.empty()) {
    obs::ScopedSpan infer_span(trace != nullptr ? &trace->infer_ns
                                                : nullptr);
    if (engine == nullptr) {
      return Status::InvalidArgument(
          "rulebases requested but no inference engine supplied");
    }
    const RulesIndex* index =
        engine->FindCoveringIndex(model_names, rulebase_names);
    if (index != nullptr) {
      inferred = &index->inferred();
      if (trace != nullptr) {
        trace->used_rules_index = true;
        trace->inference_rounds = index->rounds();
        trace->inferred_triples = index->inferred_count();
      }
    } else {
      if (mutable_store == nullptr) {
        return Status::InvalidArgument(
            "on-the-fly entailment requires a mutable store (snapshot "
            "reads support rulebases only via a covering rules index)");
      }
      RDFDB_ASSIGN_OR_RETURN(std::vector<const Rulebase*> rulebases,
                             engine->ResolveRulebases(rulebase_names));
      size_t rounds = 0;
      RDFDB_ASSIGN_OR_RETURN(
          on_the_fly,
          ComputeEntailment(mutable_store, base, rulebases, &rounds));
      inferred = &on_the_fly;
      if (trace != nullptr) {
        trace->inference_rounds = rounds;
        trace->inferred_triples = on_the_fly.size();
      }
    }
  }

  std::vector<const TripleSource*> sources{&base};
  if (inferred != nullptr) sources.push_back(inferred);
  UnionSource source(std::move(sources));

  // Column order: first appearance across patterns, or the explicit
  // projection.
  std::vector<std::string> all_vars;
  for (const TriplePattern& pattern : patterns) {
    for (const std::string& var : pattern.Variables()) {
      if (std::find(all_vars.begin(), all_vars.end(), var) ==
          all_vars.end()) {
        all_vars.push_back(var);
      }
    }
  }
  MatchResult result;
  std::vector<std::string>& columns = *MatchBuilder::columns(&result);
  if (options.projection.empty()) {
    columns = all_vars;
  } else {
    for (const std::string& var : options.projection) {
      if (std::find(all_vars.begin(), all_vars.end(), var) ==
          all_vars.end()) {
        return Status::InvalidArgument("projection variable ?" + var +
                                       " does not occur in the query");
      }
      columns.push_back(var);
    }
  }

  std::vector<std::vector<rdf::Term>>& rows = *MatchBuilder::rows(&result);
  // DISTINCT dedupes on the bound VALUE_ID tuple, before any term
  // resolution: the central rdf_value$ store already dedupes terms, so
  // equal rows have equal id tuples, and duplicates skip the per-column
  // TermForValueId lookups entirely.
  std::unordered_set<std::vector<rdf::ValueId>, IdRowHash> seen;

  // Shared row sink over the projected VALUE_IDs (both executors land
  // here, so DISTINCT/LIMIT/resolution behave identically).
  auto emit_row = [&](const rdf::ValueId* ids) {
    if (options.distinct) {
      std::vector<rdf::ValueId> key(ids, ids + columns.size());
      if (!seen.insert(std::move(key)).second) {
        if (trace != nullptr) ++trace->distinct_drops;
        return true;  // duplicate
      }
    }
    // resolve_ns overlaps exec_ns: the timer only runs when traced, so
    // the untraced path pays no clock reads per row.
    std::optional<Timer> resolve_timer;
    if (trace != nullptr) resolve_timer.emplace();
    std::vector<rdf::Term> row;
    row.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      auto term = store.TermForValueId(ids[i]);
      if (!term.ok()) return false;
      row.push_back(std::move(term).value());
    }
    if (trace != nullptr) {
      trace->resolve_ns += resolve_timer->ElapsedNanos();
      trace->value_resolutions += columns.size();
    }
    rows.push_back(std::move(row));
    return options.limit == 0 || rows.size() < options.limit;
  };

  Status status;
  {
    obs::ScopedSpan exec_span(trace != nullptr ? &trace->exec_ns : nullptr);
    std::vector<rdf::ValueId> ids(columns.size());
    if (options.use_legacy) {
      EvalOptions eval_options;
      eval_options.trace = trace;
      eval_options.use_legacy = true;
      eval_options.cancel = options.cancel;
      status = EvalPatterns(
          store, patterns, compiled_filter.get(), source,
          [&](const IdBindings& binding) {
            for (size_t i = 0; i < columns.size(); ++i) {
              ids[i] = binding.at(columns[i]);
            }
            return emit_row(ids.data());
          },
          eval_options);
    } else {
      // Compiled path: project straight out of the executor's slot
      // frame — no per-solution binding map.
      const FilterExpr* f = compiled_filter.get();
      if (f != nullptr && f->IsAlwaysTrue()) f = nullptr;
      CompiledPlan plan = CompilePatterns(store, patterns, f, source,
                                          /*reorder_patterns=*/true, trace);
      std::vector<SlotIndex> col_slots;
      col_slots.reserve(columns.size());
      for (const std::string& var : columns) {
        col_slots.push_back(plan.SlotOf(var));
      }
      ExecOptions exec_options;
      exec_options.threads = options.threads;
      exec_options.chunk_frames = options.chunk_frames;
      exec_options.trace = trace;
      exec_options.timeline = store.timeline();
      exec_options.cancel = options.cancel;
      status = ExecutePlan(
          store, plan, source,
          [&](const rdf::ValueId* slots) {
            for (size_t i = 0; i < columns.size(); ++i) {
              ids[i] = slots[col_slots[i]];
            }
            return emit_row(ids.data());
          },
          exec_options);
    }
  }
  RDFDB_RETURN_NOT_OK(status);
  const obs::ResourceUsage query_usage = query_scope.Usage();
  if (trace != nullptr) {
    trace->rows_emitted = rows.size();
    trace->cpu_ns += query_usage.cpu_ns;
    trace->bytes_allocated += query_usage.bytes_allocated;
    trace->allocations += query_usage.allocations;
    trace->total_ns = total_timer.ElapsedNanos();
  }
  if (metrics != nullptr) {
    metrics->queries->Inc();
    metrics->query_rows->Inc(rows.size());
    metrics->query_ns->Observe(total_timer.ElapsedNanos());
    // With a trace the totals include worker-thread deltas; without one
    // the calling thread's scope is still exact for sequential queries.
    if (trace != nullptr) {
      metrics->query_cpu_ns->Inc(static_cast<uint64_t>(
          trace->cpu_ns > 0 ? trace->cpu_ns : 0));
      metrics->query_alloc_bytes->Inc(trace->bytes_allocated);
    } else {
      metrics->query_cpu_ns->Inc(static_cast<uint64_t>(
          query_usage.cpu_ns > 0 ? query_usage.cpu_ns : 0));
      metrics->query_alloc_bytes->Inc(query_usage.bytes_allocated);
    }
  }
  if (slow_log != nullptr && trace != nullptr &&
      trace->total_ns >= slow_log->threshold_ns()) {
    obs::SlowQueryLog::Entry entry;
    entry.query = query;
    for (size_t i = 0; i < model_names.size(); ++i) {
      if (i > 0) entry.models += ",";
      entry.models += model_names[i];
    }
    entry.rows = rows.size();
    entry.total_ns = trace->total_ns;
    entry.trace = *trace;
    entry.concurrent = obs::ActiveOpsSummaryExcluding(active_op.id());
    const size_t active_now = obs::ActiveOpCount();
    entry.concurrent_ops =
        active_now - (active_op.registered() && active_now > 0 ? 1 : 0);
    slow_log->Record(std::move(entry));
  }
  return result;
}

}  // namespace

Result<MatchResult> SdoRdfMatch(rdf::RdfStore* store, InferenceEngine* engine,
                                const std::string& query,
                                const std::vector<std::string>& model_names,
                                const std::vector<std::string>& rulebase_names,
                                const AliasList& aliases,
                                const std::string& filter,
                                const MatchOptions& options) {
  return MatchImpl(*store, store, engine, query, model_names, rulebase_names,
                   aliases, filter, options);
}

Result<MatchResult> SdoRdfMatch(const rdf::StoreView& store,
                                const std::string& query,
                                const std::vector<std::string>& model_names,
                                const AliasList& aliases,
                                const std::string& filter,
                                const MatchOptions& options) {
  return MatchImpl(store, /*mutable_store=*/nullptr, /*engine=*/nullptr,
                   query, model_names, /*rulebase_names=*/{}, aliases, filter,
                   options);
}

}  // namespace rdfdb::query
