#include "query/inference.h"

#include "common/string_util.h"

namespace rdfdb::query {

namespace {

/// Serialize aliases into one cell ("prefix=uri prefix=uri ...").
std::string SerializeAliases(const AliasList& aliases) {
  std::string out;
  for (const SdoRdfAlias& alias : aliases) {
    if (!out.empty()) out += " ";
    out += alias.prefix + "=" + alias.namespace_uri;
  }
  return out;
}

storage::Schema RuleTableSchema() {
  return storage::Schema({
      {"RULE_NAME", storage::ValueType::kString, false},
      {"ANTECEDENT", storage::ValueType::kString, false},
      {"FILTER", storage::ValueType::kString, true},
      {"CONSEQUENT", storage::ValueType::kString, false},
      {"ALIASES", storage::ValueType::kString, true},
  });
}

}  // namespace

std::string InferenceEngine::NormalizeName(const std::string& name) {
  return ToUpper(name);
}

Status InferenceEngine::CreateRulebase(const std::string& name) {
  std::string key = NormalizeName(name);
  if (key == NormalizeName(kRdfsRulebaseName)) {
    return Status::AlreadyExists("RDFS is the built-in rulebase");
  }
  if (rulebases_.count(key) > 0) {
    return Status::AlreadyExists("rulebase " + name);
  }
  auto table = store_->database().CreateTable("MDSYS", "RDFR_" + key,
                                              RuleTableSchema());
  if (!table.ok()) return table.status();
  rulebases_.emplace(key, Rulebase(name));
  return Status::OK();
}

Status InferenceEngine::InsertRule(const std::string& rulebase_name,
                                   Rule rule) {
  std::string key = NormalizeName(rulebase_name);
  auto it = rulebases_.find(key);
  if (it == rulebases_.end()) {
    return Status::NotFound("rulebase " + rulebase_name);
  }
  RDFDB_RETURN_NOT_OK(it->second.AddRule(rule));

  storage::Table* table =
      store_->database().GetTable("MDSYS", "RDFR_" + key);
  auto insert = table->Insert({
      storage::Value::String(rule.name),
      storage::Value::String(rule.antecedent),
      rule.filter.empty() ? storage::Value::Null()
                          : storage::Value::String(rule.filter),
      storage::Value::String(rule.consequent),
      rule.aliases.empty()
          ? storage::Value::Null()
          : storage::Value::String(SerializeAliases(rule.aliases)),
  });
  if (!insert.ok()) return insert.status();
  return Status::OK();
}

Result<const Rulebase*> InferenceEngine::GetRulebase(
    const std::string& name) const {
  std::string key = NormalizeName(name);
  if (key == NormalizeName(kRdfsRulebaseName)) {
    return &BuiltinRdfsRulebase();
  }
  auto it = rulebases_.find(key);
  if (it == rulebases_.end()) {
    return Status::NotFound("rulebase " + name);
  }
  return &it->second;
}

Status InferenceEngine::DropRulebase(const std::string& name) {
  std::string key = NormalizeName(name);
  if (rulebases_.erase(key) == 0) {
    return Status::NotFound("rulebase " + name);
  }
  return store_->database().DropTable("MDSYS", "RDFR_" + key);
}

std::vector<std::string> InferenceEngine::RulebaseNames() const {
  std::vector<std::string> names;
  names.reserve(rulebases_.size());
  for (const auto& [key, rb] : rulebases_) names.push_back(rb.name());
  return names;
}

Result<std::vector<const Rulebase*>> InferenceEngine::ResolveRulebases(
    const std::vector<std::string>& names) const {
  std::vector<const Rulebase*> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    RDFDB_ASSIGN_OR_RETURN(const Rulebase* rb, GetRulebase(name));
    out.push_back(rb);
  }
  return out;
}

Result<const RulesIndex*> InferenceEngine::CreateRulesIndex(
    const std::string& index_name,
    const std::vector<std::string>& model_names,
    const std::vector<std::string>& rulebase_names) {
  std::string key = NormalizeName(index_name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("rules index " + index_name);
  }
  RDFDB_ASSIGN_OR_RETURN(std::vector<const Rulebase*> rulebases,
                         ResolveRulebases(rulebase_names));
  RDFDB_ASSIGN_OR_RETURN(
      std::unique_ptr<RulesIndex> index,
      RulesIndex::Build(store_, index_name, model_names, rulebases));
  const RulesIndex* raw = index.get();
  indexes_.emplace(key, std::move(index));
  return raw;
}

Status InferenceEngine::DropRulesIndex(const std::string& index_name) {
  std::string key = NormalizeName(index_name);
  if (indexes_.erase(key) == 0) {
    return Status::NotFound("rules index " + index_name);
  }
  (void)store_->database().DropTable("MDSYS", "RDFI_" + key);
  return Status::OK();
}

const RulesIndex* InferenceEngine::FindCoveringIndex(
    const std::vector<std::string>& model_names,
    const std::vector<std::string>& rulebase_names) const {
  for (const auto& [key, index] : indexes_) {
    if (index->Covers(model_names, rulebase_names)) return index.get();
  }
  return nullptr;
}

}  // namespace rdfdb::query
