// Compiled slot-based streaming join executor for SDO_RDF_MATCH.
//
// The original EvalPatterns join materializes one std::map<std::string,
// ValueId> per candidate row per step. This module compiles a pattern
// list once — variables become integer slots, constants become
// pre-resolved VALUE_IDs (the same lookups the planner needs, done
// exactly once) — and then streams an index-nested-loop join over a
// single flat ValueId frame: no intermediate relations, an early stop
// from the row callback unwinds out of the innermost LinkStore scan,
// and FILTER runs as soon as the variables it references have values
// (resolving only the terms the filter mentions). ExecOptions::threads
// partitions the outermost pattern's matches across a worker pool with
// ordered consumption (the bulk loader's pipeline shape), keeping row
// order and therefore DISTINCT/LIMIT semantics bit-identical to the
// sequential run. See DESIGN.md §9.

#ifndef RDFDB_QUERY_EXEC_H_
#define RDFDB_QUERY_EXEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "obs/span_timeline.h"
#include "obs/trace.h"
#include "query/filter.h"
#include "query/sparql_pattern.h"
#include "rdf/store_view.h"

namespace rdfdb::query {

class TripleSource;  // rules_index.h; not included to avoid a cycle

/// Index into the executor's flat binding frame.
using SlotIndex = int32_t;

/// A pattern position resolved for execution: variable name, or a
/// concrete VALUE_ID, or "constant missing from the store" (no matches).
struct ResolvedNode {
  bool is_var = false;
  std::string var;
  rdf::ValueId id = 0;
  bool missing = false;
};

/// One pattern with all three positions resolved.
struct ResolvedPattern {
  ResolvedNode s, p, o;
};

/// Resolve a pattern position. Subject/predicate constants resolve
/// as-is; object constants resolve to their *canonical* form's id,
/// because object matching is canonical (CANON_END_NODE_ID). A non-null
/// `trace` tallies real rdf_value$ probes (blank-node constants never
/// probe; they are unaddressable and resolve to `missing`).
ResolvedNode ResolveNode(const rdf::StoreView& store, const PatternNode& node,
                         bool object_position,
                         obs::QueryTrace* trace = nullptr);

/// Cardinality-aware greedy join order over patterns whose constants
/// are already resolved: probes `source` with each pattern's constants
/// (bounded count; dead patterns estimate 0 and run first), then picks
/// the cheapest pattern connected to the already-bound variables.
/// Shared by CompilePatterns and PlanPatternOrderForSource.
std::vector<size_t> OrderResolvedPatterns(
    const std::vector<TriplePattern>& patterns,
    const std::vector<ResolvedPattern>& resolved, const TripleSource& source);

/// One compiled pattern position.
struct ExecPos {
  enum class Kind : uint8_t {
    kConst,  ///< pre-resolved constant: pushed into the scan as a bound
             ///< position, nothing to do per row
    kProbe,  ///< variable bound by an earlier step: scan constrained to
             ///< the slot's current value
    kBind,   ///< first occurrence of a variable: row value -> slot
    kCheck,  ///< repeat occurrence within the same pattern: row value
             ///< must equal the just-bound slot
  };
  Kind kind = Kind::kConst;
  rdf::ValueId id = 0;   ///< kConst only
  SlotIndex slot = -1;   ///< kProbe / kBind / kCheck
};

/// One join step (one pattern in execution order).
struct ExecStep {
  ExecPos s, p, o;
  size_t pattern_index = 0;  ///< position of the pattern as written
};

/// A compiled query: slots, steps, and the filter placement. Built by
/// CompilePatterns; immutable during execution (workers share it).
struct CompiledPlan {
  std::vector<std::string> vars;  ///< slot -> variable name (bind order)
  std::vector<ExecStep> steps;    ///< execution order
  std::vector<size_t> order;      ///< written-order indexes, exec order
  bool dead = false;              ///< some constant is unresolvable:
                                  ///< the query has zero rows

  /// Filter placement: evaluated right after `filter_step` emits, once
  /// every filter variable that occurs in the query is bound. Only
  /// `filter_vars` (name, slot) are resolved to Terms per evaluation;
  /// filter variables absent from the query stay unbound (comparisons
  /// against them are false, as in the materializing executor). Null
  /// `filter` (or the always-true filter) disables the whole path.
  const FilterExpr* filter = nullptr;
  ptrdiff_t filter_step = -1;
  std::vector<std::pair<std::string, SlotIndex>> filter_vars;

  /// First PatternTrace entry this plan appended to the trace (the
  /// trace may already hold entries from an earlier evaluation).
  size_t trace_base = 0;

  size_t slot_count() const { return vars.size(); }

  /// Slot of a variable; -1 if it has none (dead-truncated plans may
  /// not reach every pattern).
  SlotIndex SlotOf(const std::string& var) const;
};

/// Rows between two cancellation checkpoints in the executor's join
/// loop. Each StepRunner polls its CancelToken every this many rows it
/// processes, so an expired or abandoned request stops burning CPU
/// within one checkpoint interval per executing thread (the clock read
/// amortizes to noise). test_cancel pins this contract.
inline constexpr size_t kCancelCheckIntervalRows = 1024;

/// Execution tuning knobs.
struct ExecOptions {
  /// Worker threads for the outer-pattern partition: 1 = sequential,
  /// 0 = one per hardware thread (capped at 8, like the bulk loader).
  /// Parallel execution needs at least two steps; otherwise the run is
  /// sequential regardless.
  unsigned threads = 1;

  /// Outer-pattern frames per parallel work unit. Large enough to
  /// amortize hand-off, small enough to keep the ordered-consumption
  /// window's memory bounded.
  size_t chunk_frames = 512;

  /// Per-pattern scan/emit counts, filter tallies and parallel shape
  /// accumulate here (entries appended by CompilePatterns). Null keeps
  /// every instrumentation site to a single branch.
  obs::QueryTrace* trace = nullptr;

  /// Span timeline for the parallel executor: the phase-A outer scan
  /// (lane 0) and each chunk join (worker lanes) record one span. Null
  /// keeps every site to a single branch.
  obs::Timeline* timeline = nullptr;

  /// Cooperative cancellation: every executing thread (the sequential
  /// runner, the phase-A outer scan, and each parallel chunk worker)
  /// polls the token every kCancelCheckIntervalRows rows and unwinds
  /// with DeadlineExceeded/Cancelled when it fires. Counters flushed so
  /// far stay valid (partial-progress stats). Null disables the path.
  const CancelToken* cancel = nullptr;
};

/// Row callback: `slots` holds slot_count() bound VALUE_IDs, valid only
/// during the call. Return false to stop the run (not an error).
using SlotRowFn = std::function<bool(const rdf::ValueId* slots)>;

/// Compile patterns against `store`: resolve every constant exactly
/// once (traced), pick the join order (reusing those resolutions for
/// the planner's cardinality probes), assign slots and place the
/// filter. An always-true `filter` compiles to none. Appends one
/// PatternTrace per compiled step and fills plan_order / reordered /
/// dead_constant when traced. Compilation cannot fail: an unresolvable
/// constant yields a dead plan (zero rows at execution).
CompiledPlan CompilePatterns(const rdf::StoreView& store,
                             const std::vector<TriplePattern>& patterns,
                             const FilterExpr* filter,
                             const TripleSource& source,
                             bool reorder_patterns, obs::QueryTrace* trace);

/// Run a compiled plan, streaming each solution frame to `fn`.
/// Sequential or parallel per `options.threads`; parallel execution
/// emits rows in the exact sequential order, and trace counters for a
/// run that is not stopped early are identical to the sequential ones.
/// `store` and `source` must outlive the call and, with threads > 1,
/// must not be mutated concurrently (workers only read).
Status ExecutePlan(const rdf::StoreView& store, const CompiledPlan& plan,
                   const TripleSource& source, const SlotRowFn& fn,
                   const ExecOptions& options = {});

}  // namespace rdfdb::query

#endif  // RDFDB_QUERY_EXEC_H_
