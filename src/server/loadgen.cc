#include "server/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "server/http.h"

namespace rdfdb::server {

namespace {

int64_t Percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

std::string LoadGenStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu ok=%llu shed=%llu deadline=%llu errors=%llu "
                "qps=%.1f p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(errors), qps,
                static_cast<double>(p50_ns) / 1e6,
                static_cast<double>(p95_ns) / 1e6,
                static_cast<double>(p99_ns) / 1e6,
                static_cast<double>(max_ns) / 1e6);
  return buf;
}

std::string LoadGenStats::ToJson() const {
  std::string out = "{";
  out += "\"sent\": " + std::to_string(sent);
  out += ", \"ok\": " + std::to_string(ok);
  out += ", \"shed\": " + std::to_string(shed);
  out += ", \"deadline\": " + std::to_string(deadline);
  out += ", \"errors\": " + std::to_string(errors);
  out += ", \"acked_inserts\": " + std::to_string(acked_inserts);
  out += ", \"wall_seconds\": " + std::to_string(wall_seconds);
  out += ", \"qps\": " + std::to_string(qps);
  out += ", \"p50_ms\": " + std::to_string(static_cast<double>(p50_ns) / 1e6);
  out += ", \"p90_ms\": " + std::to_string(static_cast<double>(p90_ns) / 1e6);
  out += ", \"p95_ms\": " + std::to_string(static_cast<double>(p95_ns) / 1e6);
  out += ", \"p99_ms\": " + std::to_string(static_cast<double>(p99_ns) / 1e6);
  out += ", \"max_ms\": " + std::to_string(static_cast<double>(max_ns) / 1e6);
  out += "}";
  return out;
}

Result<LoadGenStats> RunLoadGen(const LoadGenOptions& options) {
  if (options.port == 0) {
    return Status::InvalidArgument("loadgen needs a port");
  }
  if (options.query_target.empty() && options.insert_fraction <= 0.0) {
    return Status::InvalidArgument(
        "loadgen needs a query_target or insert_fraction > 0");
  }
  const unsigned workers = std::max(1u, options.concurrency);

  struct WorkerTally {
    uint64_t sent = 0, ok = 0, shed = 0, deadline = 0, errors = 0;
    uint64_t acked_inserts = 0;
    std::vector<int64_t> latencies_ns;  ///< 200s only
  };
  std::vector<WorkerTally> tallies(workers);
  std::atomic<bool> stop{false};
  // Unique-statement counter shared across workers so every insert is a
  // fresh triple — the drain check counts exactly these back.
  std::atomic<uint64_t> next_insert{0};

  std::vector<std::pair<std::string, std::string>> headers;
  if (options.deadline_ms > 0) {
    headers.emplace_back("X-Deadline-Ms",
                         std::to_string(options.deadline_ms));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      WorkerTally& tally = tallies[w];
      // Deterministic per-worker interleave of reads and writes: every
      // k-th request is an insert when insert_fraction = 1/k (and
      // proportionally otherwise) — no RNG needed for a load mix.
      double insert_debt = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        insert_debt += options.insert_fraction;
        const bool do_insert =
            insert_debt >= 1.0 && !options.insert_model.empty();
        std::string method = "GET";
        std::string target = options.query_target;
        std::string body;
        if (do_insert) {
          insert_debt -= 1.0;
          const uint64_t n =
              next_insert.fetch_add(1, std::memory_order_relaxed);
          method = "POST";
          target = "/insert?model=" + options.insert_model;
          body = "<http://lg.example/s" + std::to_string(n) +
                 "> <http://lg.example/p> \"v" + std::to_string(n) +
                 "\" .\n";
        }
        const auto start = std::chrono::steady_clock::now();
        ++tally.sent;
        Result<HttpClientResponse> resp =
            HttpRoundTrip(options.host, options.port, method, target,
                          headers, body, options.io_timeout_ms);
        const int64_t elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (!resp.ok()) {
          ++tally.errors;
          static std::atomic<int> printed{0};
          if (printed.fetch_add(1) < 5) {
            std::fprintf(stderr, "loadgen error: %s\n",
                         resp.status().ToString().c_str());
          }
          continue;
        }
        switch (resp->status) {
          case 200:
            ++tally.ok;
            tally.latencies_ns.push_back(elapsed);
            if (do_insert) ++tally.acked_inserts;
            break;
          case 503:
            ++tally.shed;
            break;
          case 504:
            ++tally.deadline;
            break;
          default:
            ++tally.errors;
            break;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();

  LoadGenStats stats;
  std::vector<int64_t> latencies;
  for (const WorkerTally& t : tallies) {
    stats.sent += t.sent;
    stats.ok += t.ok;
    stats.shed += t.shed;
    stats.deadline += t.deadline;
    stats.errors += t.errors;
    stats.acked_inserts += t.acked_inserts;
    latencies.insert(latencies.end(), t.latencies_ns.begin(),
                     t.latencies_ns.end());
  }
  std::sort(latencies.begin(), latencies.end());
  stats.wall_seconds = wall;
  stats.qps = wall > 0 ? static_cast<double>(stats.ok) / wall : 0;
  stats.p50_ns = Percentile(latencies, 0.50);
  stats.p90_ns = Percentile(latencies, 0.90);
  stats.p95_ns = Percentile(latencies, 0.95);
  stats.p99_ns = Percentile(latencies, 0.99);
  stats.max_ns = latencies.empty() ? 0 : latencies.back();
  return stats;
}

}  // namespace rdfdb::server
