// rdfdb_serve: the deadline-aware network front-end over a
// SnapshotRdfStore.
//
// Architecture (DESIGN.md §16): one acceptor thread accepts and either
// admits the connection into a bounded AdmissionQueue or sheds it with
// an immediate 503 + Retry-After; a fixed pool of worker threads pops
// admitted connections, parses the request under the bounded HTTP
// limits, arms a CancelToken with the request deadline (client's
// X-Deadline-Ms, clamped to max_deadline_ms, measured from *accept*
// so queue wait spends the same budget), and serves it. The token is
// threaded through MatchOptions/BulkLoadOptions into the compiled
// executor's row-loop checkpoints, so an expired deadline stops burning
// CPU within one checkpoint interval per executing thread and returns
// a well-formed 504 carrying partial-progress stats from the query
// trace. A watcher thread polls in-flight sockets for client hang-ups
// (POLLRDHUP) and fires Cancel() so abandoned work also stops early.
//
// Endpoints:
//   GET  /query?q=<patterns>&model=<m>[&model=..][&filter=..]
//        [&limit=N][&distinct=1][&threads=N]      rows as JSON
//   POST /insert?model=<m>[&create=1]             N-Triples body
//   POST /reify?model=<m>&id=<rdf_t_id>           reify a stored triple
//   GET  /metrics /varz /healthz /slow /timeline /profilez /allocz
//        /activityz /historyz                     delegated to the
//                                                 embedded StatsServer
//
// Error protocol: 400 malformed request/params, 404 unknown path or
// model, 413 over a parse cap, 503 shed (Retry-After set, body JSON
// {"error":"overloaded",...}), 504 deadline exceeded (body JSON with
// partial-progress stats), 499 accounted internally for
// client-abandoned requests, 500 everything else. Success bodies are
// JSON. Graceful drain: Shutdown() stops accepting, serves what was
// admitted (their deadlines still bound them), joins every thread, and
// flushes the event log.

#ifndef RDFDB_SERVER_SERVER_H_
#define RDFDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "rdf/snapshot_store.h"
#include "server/admission.h"
#include "server/http.h"

namespace rdfdb::server {

struct RdfServerOptions {
  /// Listen port on 127.0.0.1 (0 = ephemeral, see port()).
  uint16_t port = 0;
  /// Worker threads serving admitted requests.
  unsigned workers = 4;
  /// Admission queue capacity; a full queue sheds with 503.
  size_t queue_capacity = 64;
  /// Hard ceiling every request deadline is clamped to.
  int64_t max_deadline_ms = 2000;
  /// Deadline when the client sends no X-Deadline-Ms.
  int64_t default_deadline_ms = 1000;
  /// Retry-After seconds on a shed 503.
  int retry_after_seconds = 1;
  /// Request parsing caps (413 beyond them).
  HttpLimits http_limits;
  /// Executor threads per /query (1 = sequential; 0 = auto).
  unsigned query_threads = 1;
  /// Per-connection socket I/O timeout (<= 0 disables).
  int io_timeout_ms = 5000;
  /// /healthz flips to degraded when, over the shed window's complete
  /// seconds, shed/(shed+admitted) >= this fraction and at least
  /// `unhealthy_shed_min` connections were shed (guards tiny samples).
  double unhealthy_shed_fraction = 0.5;
  uint64_t unhealthy_shed_min = 8;
  /// Client hang-up poll cadence for the in-flight watcher.
  int watch_interval_ms = 10;
  /// Statements between two deadline checks inside an insert batch.
  size_t insert_check_interval = 1024;
  /// Optional event log flushed on drain (non-owning).
  obs::EventLog* event_log = nullptr;
  /// Sources for the embedded stats router (slow-query log, timeline,
  /// flight recorder, ...). registry/refresh default to the store's;
  /// extra_health is always replaced with the server's overload signal.
  obs::StatsServer::Sources stats_sources;
};

/// Per-server metric bundle, registered into the store's registry so
/// the flight recorder and /metrics pick it up with no extra wiring.
struct ServerMetrics {
  explicit ServerMetrics(obs::MetricsRegistry* registry);

  obs::Counter* accepted;           ///< rdfdb_server_accepted_total
  obs::Counter* shed;               ///< rdfdb_server_shed_total
  obs::Counter* deadline_exceeded;  ///< rdfdb_server_deadline_exceeded_total
  obs::Counter* cancelled;          ///< rdfdb_server_cancelled_total
  obs::Gauge* queue_depth;          ///< rdfdb_server_queue_depth
  obs::Gauge* inflight;             ///< rdfdb_server_inflight_requests
  obs::Histogram* latency_ns;       ///< rdfdb_server_request_latency_ns
};

class RdfServer {
 public:
  /// `store` is non-owning and must outlive the server.
  RdfServer(rdf::SnapshotRdfStore* store, RdfServerOptions options);
  ~RdfServer();

  RdfServer(const RdfServer&) = delete;
  RdfServer& operator=(const RdfServer&) = delete;

  /// Bind, listen, spawn acceptor + workers + watcher.
  Status Start();

  /// Port actually bound (after Start).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, serve every admitted connection
  /// to completion (bounded by each request's deadline), join all
  /// threads, flush the event log. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// True between Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Route and execute one request with an already-armed token — the
  /// socket-free core, public so tests can drive the full protocol
  /// (including 504 bodies) without a connection. `token` may be null
  /// (no deadline).
  HttpResponse Handle(const HttpRequest& request, const CancelToken* token);

  const ServerMetrics& metrics() const { return metrics_; }

  /// The /healthz overload signal ("" = healthy), also installed as the
  /// embedded stats server's extra_health hook.
  std::string OverloadSignal() const;

 private:
  struct InflightWatch {
    int fd = -1;
    CancelToken* token = nullptr;
  };

  void AcceptLoop();
  void WorkerLoop();
  void WatchLoop();

  /// Serve one admitted connection end-to-end (parse, deadline, route,
  /// respond, close).
  void ServeConn(const AdmittedConn& conn);

  HttpResponse HandleQuery(const HttpRequest& request,
                           const CancelToken* token);
  HttpResponse HandleInsert(const HttpRequest& request,
                            const CancelToken* token);
  HttpResponse HandleReify(const HttpRequest& request);

  /// Map a non-OK Status from store/query layers to the wire.
  HttpResponse ResponseForStatus(const Status& status,
                                 std::string partial_stats_json);

  void RegisterWatch(int fd, CancelToken* token);
  void UnregisterWatch(int fd);

  rdf::SnapshotRdfStore* const store_;
  const RdfServerOptions options_;
  ServerMetrics metrics_;
  AdmissionQueue queue_;
  ShedWindow shed_window_;
  std::unique_ptr<obs::StatsServer> stats_;  ///< Handle() only, no socket

  // Atomic because Shutdown() closes-and-invalidates the fd while the
  // acceptor thread is blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread watcher_;

  mutable std::mutex watch_mu_;
  std::vector<InflightWatch> watched_;

  std::mutex shutdown_mu_;  ///< serializes Shutdown() callers
};

}  // namespace rdfdb::server

#endif  // RDFDB_SERVER_SERVER_H_
