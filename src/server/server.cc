#include "server/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

// Linux-specific "peer closed its end" poll flag; absent unless
// _GNU_SOURCE, so define the kernel value directly.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

#include "obs/active_ops.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "query/match.h"
#include "rdf/ntriples.h"

namespace rdfdb::server {

namespace {

/// JSON rendering of the trace counts a partially-executed query
/// accumulated before its deadline fired — the 504 body's "the server
/// did do work for you" accounting.
std::string PartialStatsJson(const obs::QueryTrace& trace) {
  std::string out = "{\"patterns\": [";
  size_t total_scanned = 0;
  for (size_t i = 0; i < trace.patterns.size(); ++i) {
    const obs::PatternTrace& p = trace.patterns[i];
    if (i > 0) out += ", ";
    out += "{\"index\": " + std::to_string(p.pattern_index);
    out += ", \"scanned\": " + std::to_string(p.rows_scanned);
    out += ", \"emitted\": " + std::to_string(p.rows_emitted) + "}";
    total_scanned += p.rows_scanned;
  }
  out += "], \"rows_scanned\": " + std::to_string(total_scanned);
  out += ", \"rows_emitted\": " + std::to_string(trace.rows_emitted);
  out += ", \"value_lookups\": " + std::to_string(trace.value_lookups);
  out += ", \"exec_threads\": " + std::to_string(trace.exec_threads);
  out += ", \"exec_chunks\": " + std::to_string(trace.exec_chunks);
  out += "}";
  return out;
}

int64_t ParseInt64(const std::string& text, int64_t fallback) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

}  // namespace

ServerMetrics::ServerMetrics(obs::MetricsRegistry* registry)
    : accepted(registry->RegisterCounter(
          "rdfdb_server_accepted_total",
          "connections admitted into the request queue")),
      shed(registry->RegisterCounter(
          "rdfdb_server_shed_total",
          "connections refused with 503 because the queue was full")),
      deadline_exceeded(registry->RegisterCounter(
          "rdfdb_server_deadline_exceeded_total",
          "requests that failed with 504 (deadline fired)")),
      cancelled(registry->RegisterCounter(
          "rdfdb_server_cancelled_total",
          "requests abandoned by the client before completion")),
      queue_depth(registry->RegisterGauge(
          "rdfdb_server_queue_depth",
          "admitted connections waiting for a worker")),
      inflight(registry->RegisterGauge(
          "rdfdb_server_inflight_requests",
          "requests currently being served")),
      latency_ns(registry->RegisterHistogram(
          "rdfdb_server_request_latency_ns",
          "accept-to-response latency of served requests",
          obs::DefaultLatencyBucketsNs())) {}

RdfServer::RdfServer(rdf::SnapshotRdfStore* store, RdfServerOptions options)
    : store_(store),
      options_(std::move(options)),
      metrics_(&store->metrics_registry()),
      queue_(options_.queue_capacity),
      shed_window_(5) {
  obs::StatsServer::Sources sources = options_.stats_sources;
  if (sources.registry == nullptr) {
    sources.registry = &store_->metrics_registry();
  }
  if (!sources.refresh) {
    sources.refresh = [store = store_] { store->UpdateMemoryGauges(); };
  }
  // The front-end owns the overload half of /healthz; the stats
  // server's own signals (event-log drops, epoch lag) still apply.
  sources.extra_health = [this] { return OverloadSignal(); };
  stats_ = std::make_unique<obs::StatsServer>(sources);
}

RdfServer::~RdfServer() { Shutdown(); }

Status RdfServer::Start() {
  if (listen_fd_.load(std::memory_order_acquire) >= 0) {
    return Status::InvalidArgument("server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  acceptor_ = std::thread([this] { AcceptLoop(); });
  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watcher_ = std::thread([this] { WatchLoop(); });
  return Status::OK();
}

void RdfServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // Stop accepting: close the listener so the blocked accept() fails.
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
      fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Drain: already-admitted connections are still served (each is
  // bounded by its own deadline), then workers observe the shutdown
  // and exit.
  queue_.Shutdown();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (watcher_.joinable()) watcher_.join();

  if (options_.event_log != nullptr) options_.event_log->Flush();
  running_.store(false, std::memory_order_release);
}

std::string RdfServer::OverloadSignal() const {
  uint64_t admitted = 0;
  uint64_t shed = 0;
  shed_window_.Rates(&admitted, &shed);
  if (shed < options_.unhealthy_shed_min) return "";
  const double fraction =
      static_cast<double>(shed) / static_cast<double>(shed + admitted);
  if (fraction < options_.unhealthy_shed_fraction) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "shed_fraction=%.2f queue_depth=%zu",
                fraction, queue_.depth());
  return buf;
}

void RdfServer::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;  // Shutdown already closed the listener
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Shutdown) or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn);
      return;
    }
    const AdmittedConn admitted{conn, std::chrono::steady_clock::now()};
    if (queue_.TryPush(admitted)) {
      metrics_.accepted->Inc();
      shed_window_.Record(/*shed=*/false);
      metrics_.queue_depth->Set(static_cast<int64_t>(queue_.depth()));
    } else {
      // Shed: the queue is the server's whole backlog, so refusal is
      // immediate and cheap — a canned 503 with Retry-After, sent with
      // a short timeout so a slow receiver can't wedge the acceptor.
      metrics_.shed->Inc();
      shed_window_.Record(/*shed=*/true);
      SetSocketTimeouts(conn, std::min(options_.io_timeout_ms, 1000));
      HttpResponse resp = JsonResponse(
          503, "{\"error\": \"overloaded\", \"queue_capacity\": " +
                   std::to_string(queue_.capacity()) + "}");
      resp.extra_headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      SendAll(conn, RenderHttpResponse(resp));
      // Consume the client's request before closing: closing with
      // unread bytes in the receive buffer makes the kernel send RST,
      // which can destroy the 503 before the client reads it. One
      // bounded drain pass (the short SO_RCVTIMEO above caps it) turns
      // the refusal into a clean FIN.
      ::shutdown(conn, SHUT_WR);
      char drain[1024];
      while (::recv(conn, drain, sizeof(drain), 0) > 0) {
      }
      ::close(conn);
    }
  }
}

void RdfServer::WorkerLoop() {
  while (std::optional<AdmittedConn> conn = queue_.Pop()) {
    metrics_.queue_depth->Set(static_cast<int64_t>(queue_.depth()));
    metrics_.inflight->Add(1);
    ServeConn(*conn);
    metrics_.inflight->Add(-1);
  }
}

void RdfServer::ServeConn(const AdmittedConn& conn) {
  SetSocketTimeouts(conn.fd, options_.io_timeout_ms);
  Result<HttpRequest> parsed = ReadHttpRequest(conn.fd, options_.http_limits);
  if (!parsed.ok()) {
    if (!parsed.status().IsIOError()) {
      SendAll(conn.fd, RenderHttpResponse(
                           ResponseForParseError(parsed.status())));
    }
    ::shutdown(conn.fd, SHUT_RDWR);
    ::close(conn.fd);
    return;
  }
  const HttpRequest& request = *parsed;

  // The deadline counts from accept: queue wait and parse time spend
  // the same budget the executor does, so an admitted request is a
  // promise bounded end-to-end.
  int64_t deadline_ms = options_.default_deadline_ms;
  if (std::optional<std::string> h = request.Header("x-deadline-ms")) {
    deadline_ms = ParseInt64(*h, deadline_ms);
  }
  deadline_ms = std::clamp<int64_t>(deadline_ms, 1, options_.max_deadline_ms);
  CancelToken token;
  token.set_deadline(conn.accept_time + std::chrono::milliseconds(deadline_ms));

  HttpResponse resp;
  if (token.Expired()) {
    // Spent its whole budget waiting in the queue: well-formed 504
    // without touching the store.
    resp = JsonResponse(
        504, "{\"error\": \"deadline exceeded\", \"stage\": \"queue\"}");
  } else {
    RegisterWatch(conn.fd, &token);
    obs::ActiveOpGuard active_op(obs::OpKind::kServerRequest,
                                 request.method + " " + request.path);
    resp = Handle(request, &token);
    UnregisterWatch(conn.fd);
  }
  if (resp.status == 504) metrics_.deadline_exceeded->Inc();
  if (resp.status == 499) metrics_.cancelled->Inc();

  SendAll(conn.fd, RenderHttpResponse(resp));
  ::shutdown(conn.fd, SHUT_RDWR);
  ::close(conn.fd);
  metrics_.latency_ns->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - conn.accept_time)
          .count()));
}

HttpResponse RdfServer::Handle(const HttpRequest& request,
                               const CancelToken* token) {
  const std::string& path = request.path;
  if (path == "/query") {
    if (request.method != "GET") {
      return HttpResponse{405, "text/plain; charset=utf-8",
                          "use GET for /query\n", {}};
    }
    return HandleQuery(request, token);
  }
  if (path == "/insert") {
    if (request.method != "POST") {
      return HttpResponse{405, "text/plain; charset=utf-8",
                          "use POST for /insert\n", {}};
    }
    return HandleInsert(request, token);
  }
  if (path == "/reify") {
    if (request.method != "POST") {
      return HttpResponse{405, "text/plain; charset=utf-8",
                          "use POST for /reify\n", {}};
    }
    return HandleReify(request);
  }
  // Observability surface: delegate to the embedded stats server's
  // socket-free router (same endpoints, same bodies).
  if (request.method == "GET") {
    obs::StatsServer::Response stats = stats_->Handle(request.target);
    HttpResponse resp;
    resp.status = stats.status;
    resp.content_type = stats.content_type;
    resp.body = std::move(stats.body);
    return resp;
  }
  return HttpResponse{405, "text/plain; charset=utf-8",
                      "method not allowed\n", {}};
}

HttpResponse RdfServer::HandleQuery(const HttpRequest& request,
                                    const CancelToken* token) {
  const auto params = ParseQueryParams(request.query);
  const std::optional<std::string> q = FindParam(params, "q");
  if (!q.has_value() || q->empty()) {
    return JsonResponse(400, "{\"error\": \"missing q parameter\"}");
  }
  std::vector<std::string> models;
  for (const auto& [key, value] : params) {
    if (key == "model" && !value.empty()) models.push_back(value);
  }
  if (models.empty()) {
    return JsonResponse(400, "{\"error\": \"missing model parameter\"}");
  }

  query::MatchOptions match_options;
  match_options.cancel = token;
  obs::QueryTrace trace;
  match_options.trace = &trace;
  match_options.threads = options_.query_threads;
  if (std::optional<std::string> t = FindParam(params, "threads")) {
    match_options.threads =
        static_cast<unsigned>(std::max<int64_t>(0, ParseInt64(*t, 1)));
  }
  if (std::optional<std::string> l = FindParam(params, "limit")) {
    match_options.limit =
        static_cast<size_t>(std::max<int64_t>(0, ParseInt64(*l, 0)));
  }
  if (std::optional<std::string> d = FindParam(params, "distinct")) {
    match_options.distinct = (*d == "1" || *d == "true");
  }
  const std::string filter = FindParam(params, "filter").value_or("");

  // Pin one snapshot for the whole query: lock-free reads against a
  // transaction-consistent version.
  rdf::SnapshotRdfStore::ReadPin pin = store_->Snapshot();
  Result<query::MatchResult> result = query::SdoRdfMatch(
      pin.view(), *q, models, {}, filter, match_options);
  if (!result.ok()) {
    return ResponseForStatus(result.status(), PartialStatsJson(trace));
  }

  const query::MatchResult& table = *result;
  std::string body = "{\"columns\": [";
  for (size_t c = 0; c < table.columns().size(); ++c) {
    if (c > 0) body += ", ";
    obs::AppendJsonString(table.columns()[c], &body);
  }
  body += "], \"rows\": [";
  for (size_t r = 0; r < table.row_count(); ++r) {
    if (r > 0) body += ", ";
    body += "[";
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) body += ", ";
      obs::AppendJsonString(table.at(r, c).ToNTriples(), &body);
    }
    body += "]";
  }
  body += "], \"row_count\": " + std::to_string(table.row_count());
  body += ", \"stats\": " + PartialStatsJson(trace) + "}";
  return JsonResponse(200, std::move(body));
}

HttpResponse RdfServer::HandleInsert(const HttpRequest& request,
                                     const CancelToken* token) {
  const auto params = ParseQueryParams(request.query);
  const std::optional<std::string> model = FindParam(params, "model");
  if (!model.has_value() || model->empty()) {
    return JsonResponse(400, "{\"error\": \"missing model parameter\"}");
  }
  const bool create = FindParam(params, "create").value_or("") == "1";

  Result<std::vector<rdf::NTriple>> statements =
      rdf::ParseNTriplesDocument(request.body);
  if (!statements.ok()) {
    return ResponseForStatus(statements.status(), "");
  }

  // One write batch, one publish. The token is checked at statement
  // intervals; a fired deadline stops the batch at that boundary, and
  // whatever was inserted is published (the 504 body reports the count
  // so the client knows exactly how far it got).
  size_t inserted = 0;
  Status status = store_->Apply([&](rdf::RdfStore& live) -> Status {
    Result<rdf::ModelId> model_id = live.GetModelId(*model);
    if (!model_id.ok() && model_id.status().IsNotFound() && create) {
      RDFDB_RETURN_NOT_OK(
          live.CreateRdfModel(*model, *model + "_app", "triple").status());
      model_id = live.GetModelId(*model);
    }
    RDFDB_RETURN_NOT_OK(model_id.status());
    const size_t check_interval =
        std::max<size_t>(1, options_.insert_check_interval);
    for (const rdf::NTriple& nt : *statements) {
      if (token != nullptr && inserted % check_interval == 0 &&
          token->Expired()) {
        return token->StatusIfDone();
      }
      RDFDB_RETURN_NOT_OK(live.InsertParsedTriple(*model_id, nt.subject,
                                                  nt.predicate, nt.object)
                              .status());
      ++inserted;
    }
    return Status::OK();
  });
  if (!status.ok()) {
    return ResponseForStatus(status,
                             "{\"inserted\": " + std::to_string(inserted) +
                                 "}");
  }
  return JsonResponse(200, "{\"inserted\": " + std::to_string(inserted) +
                               ", \"model\": " + obs::JsonString(*model) +
                               "}");
}

HttpResponse RdfServer::HandleReify(const HttpRequest& request) {
  const auto params = ParseQueryParams(request.query);
  const std::optional<std::string> model = FindParam(params, "model");
  const std::optional<std::string> id = FindParam(params, "id");
  if (!model.has_value() || model->empty() || !id.has_value()) {
    return JsonResponse(400,
                        "{\"error\": \"missing model or id parameter\"}");
  }
  const int64_t link_id = ParseInt64(*id, -1);
  if (link_id < 0) {
    return JsonResponse(400, "{\"error\": \"malformed id parameter\"}");
  }
  Result<rdf::SdoRdfTripleS> reified =
      store_->ReifyTriple(*model, static_cast<rdf::LinkId>(link_id));
  if (!reified.ok()) {
    return ResponseForStatus(reified.status(), "");
  }
  return JsonResponse(
      200, "{\"rdf_t_id\": " + std::to_string(reified->rdf_t_id()) +
               ", \"reified\": true}");
}

HttpResponse RdfServer::ResponseForStatus(const Status& status,
                                          std::string partial_stats_json) {
  int http = 500;
  if (status.IsInvalidArgument()) http = 400;
  if (status.IsNotFound()) http = 404;
  if (status.IsDeadlineExceeded()) http = 504;
  if (status.IsCancelled()) http = 499;
  std::string body = "{\"error\": " + obs::JsonString(status.message());
  if ((http == 504 || http == 499) && !partial_stats_json.empty()) {
    body += ", \"partial\": " + partial_stats_json;
  }
  body += "}";
  return JsonResponse(http, std::move(body));
}

void RdfServer::RegisterWatch(int fd, CancelToken* token) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_.push_back(InflightWatch{fd, token});
}

void RdfServer::UnregisterWatch(int fd) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_.erase(
      std::remove_if(watched_.begin(), watched_.end(),
                     [fd](const InflightWatch& w) { return w.fd == fd; }),
      watched_.end());
}

void RdfServer::WatchLoop() {
  // Poll every in-flight socket for client hang-up; a vanished client
  // flips its request's token so the executor stops burning CPU on an
  // answer nobody will read. Exits only after the workers are done
  // (Shutdown joins workers first, then flips running_ last — here the
  // loop keys off stopping_ + an empty watch list to serve the drain).
  std::vector<pollfd> fds;
  while (true) {
    {
      // The whole poll-and-cancel pass runs under watch_mu_: a worker
      // cannot UnregisterWatch (and therefore cannot destroy its
      // stack-held token or close/reuse its fd) mid-pass, so every
      // token pointer observed here is alive. poll() is non-blocking
      // (timeout 0), so the critical section stays microseconds.
      std::lock_guard<std::mutex> lock(watch_mu_);
      if (stopping_.load(std::memory_order_acquire) && watched_.empty() &&
          queue_.depth() == 0) {
        return;
      }
      if (!watched_.empty()) {
        fds.clear();
        fds.reserve(watched_.size());
        for (const InflightWatch& w : watched_) {
          fds.push_back(pollfd{w.fd, POLLRDHUP, 0});
        }
        const int n = ::poll(fds.data(), fds.size(), 0);
        if (n > 0) {
          for (size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents &
                (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) {
              watched_[i].token->Cancel();
            }
          }
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, options_.watch_interval_ms)));
  }
}

}  // namespace rdfdb::server
