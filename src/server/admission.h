// Bounded admission for the query front-end: a fixed-capacity queue of
// accepted-but-unserved connections, and a sliding-window shed-rate
// tracker feeding /healthz.
//
// The acceptor thread pushes; worker threads pop. When the queue is
// full the push fails immediately and the acceptor sheds the connection
// with a clean 503 + Retry-After — the server's backlog is therefore a
// hard bound, and latency for *admitted* requests stays bounded by
// (queue capacity / service rate) instead of growing without limit as
// offered load passes saturation (bench_server_load measures exactly
// this). Shutdown() stops admissions but lets workers drain what was
// already admitted — those requests were acked with an accept(), and
// their deadlines still apply.

#ifndef RDFDB_SERVER_ADMISSION_H_
#define RDFDB_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace rdfdb::server {

/// One admitted connection, stamped at accept time — the request's
/// deadline counts from here, so time spent waiting in the queue spends
/// the client's budget, not hides it.
struct AdmittedConn {
  int fd = -1;
  std::chrono::steady_clock::time_point accept_time;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit, or refuse immediately when full or shut down (the caller
  /// sheds the connection; nothing blocks).
  bool TryPush(AdmittedConn conn);

  /// Block until a connection is available or the queue is shut down
  /// *and* drained; nullopt means "no more work, exit".
  std::optional<AdmittedConn> Pop();

  /// Stop admitting. Already-queued connections still drain through
  /// Pop(); blocked poppers wake once the queue is empty.
  void Shutdown();

  size_t depth() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AdmittedConn> queue_;
  bool shutdown_ = false;
};

/// Sliding-window admitted/shed tallies: a ring of one-second buckets.
/// Record() is called by the acceptor; Rates() by /healthz — the window
/// excludes the current (partial) second so a single burst can't flip
/// health before it is a sustained signal.
class ShedWindow {
 public:
  /// Window length in whole seconds (ring is one larger to hold the
  /// in-progress second).
  explicit ShedWindow(size_t window_seconds = 5)
      : window_seconds_(window_seconds == 0 ? 1 : window_seconds) {}

  void Record(bool shed);

  /// Admitted/shed totals over the last `window_seconds` complete
  /// seconds.
  void Rates(uint64_t* admitted, uint64_t* shed) const;

 private:
  struct Bucket {
    int64_t second = -1;
    uint64_t admitted = 0;
    uint64_t shed = 0;
  };
  static constexpr size_t kBuckets = 16;

  int64_t NowSecond() const;

  const size_t window_seconds_;
  mutable std::mutex mu_;
  Bucket buckets_[kBuckets];
};

}  // namespace rdfdb::server

#endif  // RDFDB_SERVER_ADMISSION_H_
