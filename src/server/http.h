// Bounded HTTP/1.1 request parsing and response rendering for the
// query front-end (server/server.h), plus the tiny blocking client the
// load generator and the tests use.
//
// This is deliberately the same species of HTTP as obs/stats_server.h —
// one request per connection, Connection: close, no chunked encoding,
// no keep-alive — but unlike the stats peephole the front-end accepts
// POST bodies, so parsing is bounded at every stage: the request head
// (request line + headers) is capped, the declared Content-Length is
// capped, and anything over a cap is answered with 413 instead of being
// buffered without limit. Malformed requests get 400. The caps are the
// first line of defense for a socket exposed beyond localhost.

#ifndef RDFDB_SERVER_HTTP_H_
#define RDFDB_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::server {

/// Parsing bounds. A request that exceeds one maps to 413.
struct HttpLimits {
  /// Request line + headers, up to and including the blank line.
  size_t max_head_bytes = 16 * 1024;
  /// Declared Content-Length (N-Triples insert batches are the largest
  /// legitimate body; 4 MiB holds ~40k statements).
  size_t max_body_bytes = 4 * 1024 * 1024;
};

/// One parsed request. Header names are lower-cased; values are
/// whitespace-trimmed. `path` and `query` are the split target
/// (`query` excludes the '?', still percent-encoded).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lower-case name; nullopt when absent.
  std::optional<std::string> Header(const std::string& name) const;
};

/// One response. `extra_headers` are emitted verbatim after
/// Content-Type (e.g. Retry-After on a shed).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Reason phrase for the status codes this server emits.
const char* HttpStatusText(int status);

/// Parse a request from a buffer that holds the complete head (callers
/// reading from a socket use ReadHttpRequest, which also fetches the
/// body). Errors: InvalidArgument = 400, OutOfRange = 413.
Result<HttpRequest> ParseHttpRequestHead(std::string_view head);

/// Read and parse one full request from a connected socket, enforcing
/// `limits` while reading. Errors: InvalidArgument = 400 (malformed),
/// OutOfRange = 413 (over a cap), IOError = client vanished or stalled
/// (no response owed).
Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits);

/// Serialize status line + headers + body, Connection: close.
std::string RenderHttpResponse(const HttpResponse& response);

/// Map a parse error from ReadHttpRequest to the response it earned
/// (400 or 413, with the status message as the body).
HttpResponse ResponseForParseError(const Status& status);

/// send() until done (EINTR-safe; gives up on other errors).
void SendAll(int fd, const std::string& data);

/// Percent-decode (+ becomes space, %XX becomes the byte; malformed
/// escapes pass through verbatim).
std::string PercentDecode(std::string_view text);

/// Percent-encode for use in a query-string value.
std::string PercentEncode(std::string_view text);

/// Split "a=1&b=two" into decoded (name, value) pairs, order kept
/// (names may repeat, e.g. model=a&model=b).
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query);

/// First value of `name` in `params`; nullopt when absent.
std::optional<std::string> FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& name);

/// A client-side response (the loadgen/test half of the protocol).
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-cased names
  std::string body;
};

/// Blocking one-shot client: connect to host:port, send the request,
/// read the full response. `timeout_ms` bounds connect and each I/O
/// (<= 0 disables).
Result<HttpClientResponse> HttpRoundTrip(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body, int timeout_ms = 5000);

}  // namespace rdfdb::server

#endif  // RDFDB_SERVER_HTTP_H_
