#include "server/admission.h"

namespace rdfdb::server {

bool AdmissionQueue::TryPush(AdmittedConn conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) return false;
    queue_.push_back(conn);
  }
  cv_.notify_one();
  return true;
}

std::optional<AdmittedConn> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // shut down and drained
  AdmittedConn conn = queue_.front();
  queue_.pop_front();
  return conn;
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t ShedWindow::NowSecond() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ShedWindow::Record(bool shed) {
  const int64_t second = NowSecond();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[static_cast<size_t>(second) % kBuckets];
  if (b.second != second) {
    b.second = second;
    b.admitted = 0;
    b.shed = 0;
  }
  if (shed) {
    ++b.shed;
  } else {
    ++b.admitted;
  }
}

void ShedWindow::Rates(uint64_t* admitted, uint64_t* shed) const {
  const int64_t now = NowSecond();
  uint64_t a = 0;
  uint64_t s = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Bucket& b : buckets_) {
      // Complete seconds only: [now - window, now).
      if (b.second < 0 || b.second >= now ||
          b.second < now - static_cast<int64_t>(window_seconds_)) {
        continue;
      }
      a += b.admitted;
      s += b.shed;
    }
  }
  if (admitted != nullptr) *admitted = a;
  if (shed != nullptr) *shed = s;
}

}  // namespace rdfdb::server
