// Closed-loop load generator for rdfdb_serve: N client threads each
// issue one request, wait for the full response, and immediately issue
// the next — so concurrency, not arrival rate, is the offered-load
// knob. Raising concurrency past the server's saturation point is
// exactly the regime the admission queue exists for, and the generator
// tallies the server's verdicts (200 served / 503 shed / 504 deadline)
// separately so the headline table in EXPERIMENTS.md can show tail
// latency of *served* requests staying bounded while the shed count
// absorbs the overload.
//
// Used by tools/rdfdb_loadgen.cc (CLI), bench/bench_server_load.cpp
// (headline experiment) and the CI saturation smoke job.

#ifndef RDFDB_SERVER_LOADGEN_H_
#define RDFDB_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::server {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Closed-loop client threads (the offered-load knob).
  unsigned concurrency = 8;
  /// Wall-clock run length.
  int duration_ms = 2000;
  /// X-Deadline-Ms each request carries (<= 0 omits the header).
  int64_t deadline_ms = 500;
  /// Request target for read requests (e.g. "/query?q=...&model=m").
  std::string query_target;
  /// Fraction of requests that are inserts (0 = read-only). Inserts
  /// POST one unique N-Triples statement per request to /insert?model=.
  double insert_fraction = 0.0;
  std::string insert_model = "serve";
  /// Client-side socket timeout; must comfortably exceed deadline_ms.
  int io_timeout_ms = 10000;
};

struct LoadGenStats {
  uint64_t sent = 0;      ///< requests issued
  uint64_t ok = 0;        ///< 200 responses
  uint64_t shed = 0;      ///< 503 responses (admission refused)
  uint64_t deadline = 0;  ///< 504 responses (deadline fired)
  uint64_t errors = 0;    ///< transport failures + other statuses
  uint64_t acked_inserts = 0;  ///< statements the server acked with 200

  double wall_seconds = 0;
  double qps = 0;  ///< served (200) responses per second

  /// Latency percentiles over *served* (200) requests, nanoseconds.
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
  int64_t max_ns = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Run the closed loop. Fails only on setup errors (bad options);
/// per-request transport failures land in `errors`.
Result<LoadGenStats> RunLoadGen(const LoadGenOptions& options);

}  // namespace rdfdb::server

#endif  // RDFDB_SERVER_LOADGEN_H_
