#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rdfdb::server {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// recv() with EINTR retry. Returns n > 0 on data, 0 on EOF, -1 on a
/// real error (errno preserved).
ssize_t RecvSome(int fd, char* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

}  // namespace

std::optional<std::string> HttpRequest::Header(
    const std::string& name) const {
  auto it = headers.find(ToLower(name));
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Error";
  }
}

Result<HttpRequest> ParseHttpRequestHead(std::string_view head) {
  HttpRequest req;
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("missing request line terminator");
  }
  const std::string_view line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return Status::InvalidArgument("malformed request line");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed request line");
  }
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (req.target.empty() || req.target[0] != '/') {
    return Status::InvalidArgument("request target must start with /");
  }
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    return Status::InvalidArgument("malformed HTTP version");
  }
  const size_t qpos = req.target.find('?');
  if (qpos == std::string::npos) {
    req.path = req.target;
  } else {
    req.path = req.target.substr(0, qpos);
    req.query = req.target.substr(qpos + 1);
  }

  size_t at = line_end + 2;
  while (at < head.size()) {
    const size_t eol = head.find("\r\n", at);
    if (eol == std::string_view::npos) {
      return Status::InvalidArgument("missing header terminator");
    }
    if (eol == at) break;  // blank line: end of head
    const std::string_view header = head.substr(at, eol - at);
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    req.headers[ToLower(Trim(header.substr(0, colon)))] =
        std::string(Trim(header.substr(colon + 1)));
    at = eol + 2;
  }
  return req;
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits) {
  // Read until the blank line that ends the head, never buffering more
  // than the head cap.
  std::string buffer;
  size_t head_end = std::string::npos;
  char chunk[2048];
  while (head_end == std::string::npos) {
    if (buffer.size() >= limits.max_head_bytes) {
      return Status::OutOfRange("request head exceeds " +
                                std::to_string(limits.max_head_bytes) +
                                " bytes");
    }
    const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n < 0) {
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer.empty()) return Status::IOError("client closed connection");
      return Status::InvalidArgument("truncated request head");
    }
    // Re-scan across the chunk boundary ("\r\n\r\n" may straddle it).
    const size_t scan_from = buffer.size() < 3 ? 0 : buffer.size() - 3;
    buffer.append(chunk, static_cast<size_t>(n));
    head_end = buffer.find("\r\n\r\n", scan_from);
  }

  RDFDB_ASSIGN_OR_RETURN(HttpRequest req,
                         ParseHttpRequestHead(
                             std::string_view(buffer).substr(0, head_end + 4)));

  size_t content_length = 0;
  if (std::optional<std::string> cl = req.Header("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed Content-Length");
    }
    content_length = static_cast<size_t>(v);
  }
  if (content_length > limits.max_body_bytes) {
    return Status::OutOfRange("request body of " +
                              std::to_string(content_length) +
                              " bytes exceeds " +
                              std::to_string(limits.max_body_bytes));
  }

  req.body = buffer.substr(head_end + 4);
  if (req.body.size() > content_length) {
    req.body.resize(content_length);  // pipelined extra bytes: ignored
  }
  while (req.body.size() < content_length) {
    const size_t want = std::min<size_t>(sizeof(chunk),
                                         content_length - req.body.size());
    const ssize_t n = RecvSome(fd, chunk, want);
    if (n < 0) {
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::InvalidArgument("truncated request body");
    req.body.append(chunk, static_cast<size_t>(n));
  }
  return req;
}

std::string RenderHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse ResponseForParseError(const Status& status) {
  HttpResponse resp;
  resp.status = status.IsOutOfRange() ? 413 : 400;
  resp.body = status.message() + "\n";
  return resp;
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

std::string PercentDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = HexDigit(text[i + 1]);
      const int lo = HexDigit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PercentEncode(std::string_view text) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool unreserved = (u >= 'A' && u <= 'Z') ||
                            (u >= 'a' && u <= 'z') ||
                            (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                            u == '.' || u == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t at = 0;
  while (at <= query.size()) {
    size_t amp = query.find('&', at);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(at, amp - at);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.emplace_back(PercentDecode(pair), "");
      } else {
        out.emplace_back(PercentDecode(pair.substr(0, eq)),
                         PercentDecode(pair.substr(eq + 1)));
      }
    }
    at = amp + 1;
  }
  return out;
}

std::optional<std::string> FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::string& name) {
  for (const auto& [key, value] : params) {
    if (key == name) return value;
  }
  return std::nullopt;
}

Result<HttpClientResponse> HttpRoundTrip(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  SendAll(fd, request);

  // The server closes after one response, so read to EOF.
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
    if (n < 0) {
      const Status st =
          Status::IOError(std::string("recv: ") + std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IOError("truncated response");
  }
  HttpClientResponse resp;
  const size_t line_end = raw.find("\r\n");
  const std::string line = raw.substr(0, line_end);
  // "HTTP/1.1 NNN Reason"
  const size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    return Status::IOError("malformed response status line");
  }
  resp.status = std::atoi(line.c_str() + sp + 1);
  size_t at = line_end + 2;
  while (at < head_end) {
    const size_t eol = raw.find("\r\n", at);
    const std::string_view header =
        std::string_view(raw).substr(at, eol - at);
    const size_t colon = header.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      resp.headers[ToLower(Trim(header.substr(0, colon)))] =
          std::string(Trim(header.substr(colon + 1)));
    }
    at = eol + 2;
  }
  resp.body = raw.substr(head_end + 4);
  return resp;
}

}  // namespace rdfdb::server
