// Minimal JSON string escaping shared by the observability sinks
// (event-log JSONL lines, Chrome trace-event export, /varz rendering).
// Full JSON parsing is deliberately out of scope — the library only
// *emits* JSON, and every consumer (jq, chrome://tracing, Prometheus
// scrapers) parses it on the other side.

#ifndef RDFDB_OBS_JSON_H_
#define RDFDB_OBS_JSON_H_

#include <cstdio>
#include <string>

namespace rdfdb::obs {

/// Append `value` to `out` as a double-quoted JSON string, escaping
/// quotes, backslashes and control characters.
inline void AppendJsonString(const std::string& value, std::string* out) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline std::string JsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  AppendJsonString(value, &out);
  return out;
}

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_JSON_H_
