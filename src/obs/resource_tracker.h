// Per-thread resource attribution: who spent the CPU, who allocated
// the bytes.
//
// resource_tracker.cc defines the global `operator new`/`operator
// delete` family. Every allocation bumps two sets of counters: a
// process-wide live-bytes ledger (TrackedHeapBytes — the store's
// resident-heap gauge) and a *per-thread monotonic* allocation total.
// A ResourceScope snapshots the calling thread's monotonic totals and
// its CLOCK_THREAD_CPUTIME_ID clock on entry and reports the deltas —
// bytes_allocated, allocation count, cpu_ns — on exit, attributing
// them to a named scope ("query", "bulkload_chunk", "publish", ...)
// in a global registry that /allocz renders.
//
// Design constraints (why it looks the way it does):
//   * The allocator hook path is a handful of instructions: one
//     malloc_usable_size call, two relaxed atomic adds, two plain
//     thread-local adds. No branches on attachment, no scope-pointer
//     chasing — scopes are computed as deltas of the thread's
//     monotonic totals, so nesting is inclusive for free and the hook
//     never dereferences mutable shared state.
//   * Everything the hooks touch is constant-initialized (plain
//     atomics, POD thread_locals), so allocations during static init
//     and thread start-up are safe.
//   * Attribution is per-thread by construction: a scope only sees
//     what its own thread allocated. Parallel stages (the join
//     executor's chunk workers, the bulk-load parse workers) open
//     their own scopes and the consumers merge the deltas — see
//     query/exec.cc and rdf/bulk_load.cc.

#ifndef RDFDB_OBS_RESOURCE_TRACKER_H_
#define RDFDB_OBS_RESOURCE_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rdfdb::obs {

// ---- Process-wide ledger (allocator hooks) --------------------------------

/// Live heap bytes currently allocated through the hooked operator new
/// (usable size, so it reflects what the allocator actually committed).
uint64_t TrackedHeapBytes();

/// Allocations / frees since process start (monotonic).
uint64_t TrackedAllocations();
uint64_t TrackedFrees();

/// Calling thread's monotonic allocation totals since thread start.
uint64_t ThreadAllocatedBytes();
uint64_t ThreadAllocationCount();

/// One thread's monotonic allocation counters, published for safe
/// cross-thread observation. Blocks come from a static pool and are
/// NEVER freed or recycled, so a pointer obtained from any thread stays
/// dereferenceable for the remainder of the process — this is what lets
/// the active-operation registry (obs/active_ops.h) render live
/// per-operation allocation deltas without racing thread exit. Only the
/// owning thread writes (relaxed store; no RMW on the hot path), any
/// thread may read (relaxed load).
struct ThreadCounterBlock {
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> count{0};
};

/// The calling thread's counter block (allocated from the pool on first
/// use; when the pool is exhausted threads share one overflow block and
/// per-thread attribution degrades to approximate, never unsafe).
const ThreadCounterBlock* ThisThreadCounters();

/// Calling thread's CPU time (CLOCK_THREAD_CPUTIME_ID), nanoseconds.
int64_t ThreadCpuNanos();

// ---- Scoped attribution ---------------------------------------------------

/// What one scope consumed on its own thread.
struct ResourceUsage {
  int64_t cpu_ns = 0;
  uint64_t bytes_allocated = 0;
  uint64_t allocations = 0;

  ResourceUsage& operator+=(const ResourceUsage& other) {
    cpu_ns += other.cpu_ns;
    bytes_allocated += other.bytes_allocated;
    allocations += other.allocations;
    return *this;
  }
};

/// RAII attribution span. On destruction the deltas are folded into
/// the global scope registry under `label` and, when `sink` is
/// non-null, added to `*sink` (the QueryTrace/BulkLoadStats path).
/// `label` must be a string with static storage duration.
class ResourceScope {
 public:
  explicit ResourceScope(const char* label, ResourceUsage* sink = nullptr);
  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;
  ~ResourceScope();

  /// Usage so far (without closing the scope).
  ResourceUsage Usage() const;

 private:
  const char* label_;
  ResourceUsage* sink_;
  uint64_t start_bytes_;
  uint64_t start_allocs_;
  int64_t start_cpu_ns_;
};

// ---- Scope registry (/allocz) ---------------------------------------------

/// Aggregate of every closed ResourceScope with a given label.
struct ScopeStats {
  std::string label;
  uint64_t scopes = 0;           ///< times the scope ran
  uint64_t bytes_allocated = 0;  ///< summed per-scope deltas
  uint64_t allocations = 0;
  int64_t cpu_ns = 0;
};

/// Snapshot of all labels, sorted by bytes_allocated descending.
std::vector<ScopeStats> ScopeStatsSnapshot();

/// Drop all accumulated scope stats (tests, and /allocz?reset=1).
void ResetScopeStats();

/// JSON rendering used by the /allocz endpoint: the process ledger
/// plus the top `max_scopes` scopes by bytes.
std::string RenderAllocz(size_t max_scopes = 32);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_RESOURCE_TRACKER_H_
