#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace rdfdb::obs {
namespace {

std::string Us(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::string QueryTrace::ToString() const {
  std::ostringstream out;
  out << "query trace: " << patterns.size() << " pattern(s), plan [";
  for (size_t i = 0; i < plan_order.size(); ++i) {
    if (i != 0) out << " ";
    out << plan_order[i];
  }
  out << "]" << (reordered ? "" : " (as written)")
      << ", rules index: " << (used_rules_index ? "yes" : "no");
  if (dead_constant) out << ", DEAD CONSTANT (zero rows)";
  out << "\n";
  for (size_t i = 0; i < patterns.size(); ++i) {
    const PatternTrace& p = patterns[i];
    out << "  step " << (i + 1) << ": pattern " << p.pattern_index << " "
        << p.text << "  scanned=" << p.rows_scanned
        << " emitted=" << p.rows_emitted << "\n";
  }
  out << "  value lookups: " << value_lookups << " (" << value_lookup_misses
      << " miss), terms resolved: " << value_resolutions << "\n";
  out << "  filter: " << filter_evaluations << " evaluated, "
      << filter_rejections << " rejected; distinct drops: " << distinct_drops
      << "; rows: " << rows_emitted << "\n";
  if (inference_rounds > 0 || inferred_triples > 0) {
    out << "  inference: " << inference_rounds << " round(s), "
        << inferred_triples << " triple(s) derived\n";
  }
  if (exec_threads > 1) {
    out << "  parallel: " << exec_threads << " thread(s), " << exec_chunks
        << " chunk(s)\n";
    for (const ExecWorkerTrace& w : exec_workers) {
      out << "    worker " << w.worker << ": chunks=" << w.chunks
          << " rows=" << w.rows_emitted << " busy_us=" << Us(w.busy_ns)
          << " cpu_us=" << Us(w.cpu_ns) << " alloc=" << w.bytes_allocated
          << "B\n";
    }
  }
  out << "  resources: cpu_us=" << Us(cpu_ns)
      << " alloc=" << bytes_allocated << "B (" << allocations
      << " allocation(s))\n";
  out << "  stages (us): parse=" << Us(parse_ns) << " plan=" << Us(plan_ns)
      << " infer=" << Us(infer_ns) << " exec=" << Us(exec_ns)
      << " resolve=" << Us(resolve_ns) << " total=" << Us(total_ns) << "\n";
  return out.str();
}

}  // namespace rdfdb::obs
