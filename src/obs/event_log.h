// Asynchronous structured event log.
//
// Producers (store lifecycle, model DDL, bulk-load chunks, snapshot and
// redo-replay, errors) append small structured events to a bounded
// multi-producer ring; a background drainer thread serializes them to a
// JSONL sink. Appending never blocks on I/O: when the ring is full the
// event is dropped and counted, so an overloaded sink degrades the log,
// never the store. A null EventLog pointer at every emission site keeps
// the facility strictly opt-in with a single branch on the hot path
// (see DESIGN.md §10).

#ifndef RDFDB_OBS_EVENT_LOG_H_
#define RDFDB_OBS_EVENT_LOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::obs {

/// One key/value field of an event. Numeric fields render unquoted.
struct EventField {
  const char* key = "";  ///< static string (field names are compile-time)
  std::string str;       ///< valid when !is_num
  int64_t num = 0;       ///< valid when is_num
  bool is_num = false;

  static EventField Num(const char* key, int64_t value) {
    EventField f;
    f.key = key;
    f.num = value;
    f.is_num = true;
    return f;
  }
  static EventField Str(const char* key, std::string value) {
    EventField f;
    f.key = key;
    f.str = std::move(value);
    return f;
  }
};

/// One structured event. `category` and `name` are static strings
/// (every emission site names its event at compile time); dynamic data
/// goes in `fields`.
struct Event {
  int64_t ts_us = 0;        ///< microseconds since the log was opened
  uint64_t seq = 0;         ///< per-log append sequence (gap = drop)
  const char* category = "";  ///< "store", "model", "bulkload", ...
  const char* name = "";      ///< event name within the category
  std::vector<EventField> fields;
};

/// Bounded MPSC event ring with a background JSONL drainer.
///
/// Thread-safety: Append may be called from any number of threads
/// concurrently (the ring mutex is held only to link the event in — the
/// drainer does all serialization and I/O off-thread). The counters are
/// relaxed atomics readable at any time.
class EventLog {
 public:
  struct Options {
    size_t capacity = 4096;  ///< ring slots; full ring drops new events
    std::string path;        ///< JSONL sink path (append); empty with
                             ///< `sink` for an in-memory stream
    std::ostream* sink = nullptr;  ///< test hook: drain here instead of
                                   ///< the file (not owned; must outlive
                                   ///< the log)
    size_t retain_tail = 64;  ///< newest rendered lines kept in memory
                              ///< for TailJsonl (0 disables)
  };

  /// Opens the sink and starts the drainer thread.
  static Result<std::unique_ptr<EventLog>> Open(Options options);

  /// Stops the drainer after draining everything still buffered.
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event (non-blocking; drops when the ring is full).
  void Append(const char* category, const char* name,
              std::vector<EventField> fields = {});

  /// Block until every event appended before the call has been written
  /// and the sink flushed.
  void Flush();

  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }

  /// Microseconds since the log was opened (the events' time base).
  int64_t NowUs() const;

  /// The newest `Options::retain_tail` rendered JSONL lines,
  /// concatenated oldest-first. Maintained by the drainer, so it
  /// trails Append by one drain cycle; the flight recorder mirrors it
  /// into the crash black box every sample.
  std::string TailJsonl() const;

 private:
  explicit EventLog(Options options);

  void DrainLoop();
  static std::string RenderJsonl(const Event& event);

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<std::ofstream> file_;  ///< set when options_.path used
  std::ostream* out_ = nullptr;          ///< the active sink

  std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the drainer
  std::condition_variable flush_cv_;  ///< wakes Flush waiters
  std::vector<Event> ring_;           // guarded by mu_; fixed capacity
  size_t head_ = 0;                   // guarded by mu_; oldest slot
  size_t count_ = 0;                  // guarded by mu_; occupied slots
  bool stop_ = false;                 // guarded by mu_

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};

  // Retained tail of rendered lines. Its own mutex so TailJsonl
  // readers never contend with producers on mu_.
  mutable std::mutex tail_mu_;
  std::deque<std::string> tail_;  // guarded by tail_mu_; newest last

  std::thread drainer_;  ///< started last, joined in the destructor
};

/// Emit an error event (no-op on a null log): category "error",
/// fields {where, code, message}.
void LogErrorEvent(EventLog* log, const char* where, const Status& status);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_EVENT_LOG_H_
