// Lock-free metrics instruments and a per-store registry.
//
// Every instrument writes through relaxed std::atomic operations only,
// so the hot paths (rdf_value$ interning, rdf_link$ inserts, pattern
// matching) can bump counters from inside ConcurrentRdfStore's
// shared-lock sections without introducing a new synchronisation
// point. The registry itself takes a mutex only on registration and on
// dump — never on the instrument write path.
//
// Naming scheme (see DESIGN.md §8): Prometheus conventions —
// `rdfdb_<subsystem>_<what>_total` for counters,
// `rdfdb_<subsystem>_<what>` for gauges, and `rdfdb_<subsystem>_<what>_ns`
// for latency histograms (nanosecond unit, matching Timer::ElapsedNanos).

#ifndef RDFDB_OBS_METRICS_H_
#define RDFDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "common/timer.h"

namespace rdfdb::obs {

/// Monotonically increasing event count. All operations are wait-free.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, cache sizes). Set/Add are
/// wait-free; SetMax is lock-free (CAS loop) and is what pipeline
/// stages use to publish a high-water mark.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if `v` is larger than the current value.
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with cumulative-on-render semantics (the
/// stored per-bucket counts are disjoint; RenderPrometheus emits the
/// cumulative `le` form). Bucket bounds are immutable after
/// construction, so Observe touches only atomics.
class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending; an implicit +Inf bucket
  /// is appended.
  explicit Histogram(std::vector<uint64_t> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Disjoint count for bucket `i`; `i == bounds().size()` is +Inf.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Default latency bucket bounds in nanoseconds: powers of four from
/// 1 µs to ~1.07 s. Eleven buckets cover a sub-microsecond intern probe
/// through a multi-hundred-millisecond bulk load with one series.
std::vector<uint64_t> DefaultLatencyBucketsNs();

/// Estimate the q-quantile (q in [0, 1]) of a histogram from its
/// *disjoint* bucket counts (`counts.size() == bounds.size() + 1`, the
/// layout Histogram stores), linearly interpolating within the landing
/// bucket. Observations in the +Inf bucket clamp to the last finite
/// bound (the estimate is a floor there, not a value). Returns 0 when
/// the histogram is empty. The interval-snapshot machinery calls this
/// on bucket *deltas* to get per-interval quantiles.
double QuantileFromBuckets(const std::vector<uint64_t>& bounds,
                           const std::vector<uint64_t>& counts, double q);

/// Convenience over a live instrument's current counts.
double HistogramQuantile(const Histogram& histogram, double q);

/// Owns the instruments for one store. Registration hands back a
/// stable pointer that callers cache (StoreMetrics does exactly this),
/// so steady-state operation never performs a name lookup.
/// Re-registering an existing name with the same kind returns the
/// existing instrument; a kind mismatch returns nullptr.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// Read-only view of one registered instrument (exactly one of the
  /// three pointers is non-null, per `kind`). Valid only during ForEach.
  struct InstrumentView {
    const std::string* name;
    const std::string* help;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(const std::string& name, const std::string& help);
  Gauge* RegisterGauge(const std::string& name, const std::string& help);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               std::vector<uint64_t> upper_bounds);

  /// nullptr when the name is absent or registered as another kind.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Visit every instrument in lexicographic name order under the
  /// registry mutex (the interval-snapshot API is built on this; `fn`
  /// must not call back into the registry).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      InstrumentView view;
      view.name = &name;
      view.help = &entry.help;
      view.kind = entry.kind;
      view.counter = entry.counter.get();
      view.gauge = entry.gauge.get();
      view.histogram = entry.histogram.get();
      fn(view);
    }
  }

  /// Prometheus text exposition format (# HELP / # TYPE / samples),
  /// instruments in lexicographic name order. Histograms additionally
  /// carry summary-style p50/p95/p99 quantile lines estimated from the
  /// bucket counts.
  std::string RenderPrometheus() const;
  /// One JSON object keyed by metric name; histograms carry
  /// cumulative buckets plus sum, count, and p50/p95/p99 estimates.
  std::string RenderJson() const;

 private:
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => deterministic dumps
};

/// RAII nanosecond span: adds the elapsed time to `*sink_ns` (if
/// non-null) and observes it into `histogram` (if non-null) on
/// destruction. Null sinks make tracing strictly opt-in with a single
/// branch on the cold path.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram, int64_t* sink_ns = nullptr)
      : histogram_(histogram), sink_ns_(sink_ns) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (histogram_ == nullptr && sink_ns_ == nullptr) return;
    const int64_t ns = timer_.ElapsedNanos();
    if (sink_ns_ != nullptr) *sink_ns_ += ns;
    if (histogram_ != nullptr) histogram_->Observe(static_cast<uint64_t>(ns));
  }

 private:
  Histogram* histogram_;
  int64_t* sink_ns_;
  Timer timer_;
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_METRICS_H_
