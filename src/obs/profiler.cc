#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <execinfo.h>
#include <signal.h>
#include <string.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfdb::obs {

namespace {

constexpr int kMaxFrames = 48;
constexpr int kSkipFrames = 2;  // handler + signal trampoline
constexpr uint32_t kRingCapacity = 128;  // samples per thread slot
constexpr int kSlots = 64;               // max concurrently-sampled threads

struct Sample {
  int nframes;
  void* frames[kMaxFrames];
};

// One SPSC ring per sampled thread. The producer is "the SIGPROF
// handler running on the owning thread" (at most one at a time, since
// a tid names one live thread); the consumer is the aggregator under
// State::agg_mu. Slots are claimed by tid CAS and never released — a
// recycled tid simply reuses the slot's ring.
struct alignas(64) Slot {
  std::atomic<uint64_t> tid{0};
  std::atomic<uint32_t> head{0};  // producer writes, release
  std::atomic<uint32_t> tail{0};  // consumer writes, release
  Sample* ring{nullptr};          // [kRingCapacity], preallocated
};

Slot g_slots[kSlots];
std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_samples{0};
std::atomic<uint64_t> g_dropped{0};

void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* /*uc*/) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;

  const uint64_t tid = static_cast<uint64_t>(::syscall(SYS_gettid));
  Slot* slot = nullptr;
  const uint64_t start = tid % kSlots;
  for (int probe = 0; probe < kSlots; ++probe) {
    Slot& candidate = g_slots[(start + probe) % kSlots];
    uint64_t cur = candidate.tid.load(std::memory_order_relaxed);
    if (cur == tid) {
      slot = &candidate;
      break;
    }
    if (cur == 0 &&
        candidate.tid.compare_exchange_strong(cur, tid,
                                              std::memory_order_acq_rel)) {
      slot = &candidate;
      break;
    }
    // Occupied by another thread (or we lost the CAS race to one):
    // keep probing. SIGPROF is blocked during its own handler, so the
    // claim never races against this thread itself.
  }

  if (slot == nullptr || slot->ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }

  const uint32_t head = slot->head.load(std::memory_order_relaxed);
  const uint32_t tail = slot->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }

  Sample& sample = slot->ring[head % kRingCapacity];
  // backtrace() is primed (its one-time libgcc bind + malloc happens in
  // StartProfiler before the timer is armed), so this call only walks
  // frame pointers / unwind tables — no allocation, no locks.
  sample.nframes = ::backtrace(sample.frames, kMaxFrames);
  slot->head.store(head + 1, std::memory_order_release);
  g_samples.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

struct State {
  std::mutex mu;  // guards start/stop transitions
  bool running = false;
  int hz = 0;
  timer_t timer{};
  bool timer_valid = false;
  bool itimer_fallback = false;
  std::thread aggregator;
  std::atomic<bool> stop_aggregator{false};

  // Aggregation: leaf-first raw address stacks -> sample count.
  // agg_mu serializes the ring *consumer* side (aggregator loop and
  // on-demand drains from CollapsedProfile) plus map access.
  std::mutex agg_mu;
  std::map<std::vector<void*>, uint64_t> stacks;
};

State& GetState() {
  static State* state = new State();  // leaked: profiler may outlive main
  return *state;
}

// Drain every ring into the aggregate map. Caller holds agg_mu.
void DrainRingsLocked(State& state) {
  for (Slot& slot : g_slots) {
    if (slot.ring == nullptr) continue;
    uint32_t tail = slot.tail.load(std::memory_order_relaxed);
    const uint32_t head = slot.head.load(std::memory_order_acquire);
    while (tail != head) {
      const Sample& sample = slot.ring[tail % kRingCapacity];
      int nframes = std::clamp(sample.nframes, 0, kMaxFrames);
      const int skip = nframes > kSkipFrames ? kSkipFrames : 0;
      std::vector<void*> key(sample.frames + skip, sample.frames + nframes);
      if (!key.empty()) ++state.stacks[key];
      ++tail;
    }
    slot.tail.store(tail, std::memory_order_release);
  }
}

void AggregatorLoop(State* state) {
  while (!state->stop_aggregator.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::lock_guard<std::mutex> lock(state->agg_mu);
    DrainRingsLocked(*state);
  }
  std::lock_guard<std::mutex> lock(state->agg_mu);
  DrainRingsLocked(*state);
}

/// Collapsed-format frame names must not contain the two structural
/// characters (';' separates frames, ' ' separates stack from count).
void SanitizeFrame(std::string* name) {
  for (char& c : *name) {
    if (c == ';') c = ':';
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  if (name->size() > 200) {
    name->resize(197);
    *name += "...";
  }
}

std::string SymbolizeFrame(void* addr) {
  Dl_info info{};
  std::string name;
  if (::dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr) {
    // No symbol (static function, stripped binary): attribute to the
    // module plus the offset so distinct functions stay distinct.
    const char* base = ::strrchr(info.dli_fname, '/');
    name = base != nullptr ? base + 1 : info.dli_fname;
    char off[32];
    std::snprintf(off, sizeof(off), "+0x%zx",
                  reinterpret_cast<uintptr_t>(addr) -
                      reinterpret_cast<uintptr_t>(info.dli_fbase));
    name += off;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<uintptr_t>(addr));
    name = buf;
  }
  SanitizeFrame(&name);
  return name;
}

}  // namespace

bool StartProfiler(int hz) {
  hz = std::clamp(hz, 1, 1000);
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) return false;

  // Preallocate every ring before the first signal can fire.
  for (Slot& slot : g_slots) {
    if (slot.ring == nullptr) slot.ring = new Sample[kRingCapacity];
  }

  // Prime backtrace(): its first call binds libgcc's unwinder with a
  // one-time allocation that must not happen inside the handler.
  void* prime[4];
  ::backtrace(prime, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &ProfSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, nullptr) != 0) return false;

  g_armed.store(true, std::memory_order_release);

  const long interval_ns = 1'000'000'000L / hz;
  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  state.itimer_fallback = false;
  if (::timer_create(CLOCK_PROCESS_CPUTIME_ID, &event, &state.timer) == 0) {
    state.timer_valid = true;
    itimerspec spec{};
    spec.it_interval.tv_sec = interval_ns / 1'000'000'000L;
    spec.it_interval.tv_nsec = interval_ns % 1'000'000'000L;
    spec.it_value = spec.it_interval;
    if (::timer_settime(state.timer, 0, &spec, nullptr) != 0) {
      ::timer_delete(state.timer);
      state.timer_valid = false;
      g_armed.store(false, std::memory_order_release);
      return false;
    }
  } else {
    // Kernels without per-process CPU-clock timers: ITIMER_PROF has
    // the same delivery semantics (process CPU time, SIGPROF).
    itimerval val{};
    val.it_interval.tv_sec = 0;
    val.it_interval.tv_usec =
        static_cast<suseconds_t>(interval_ns / 1000);
    val.it_value = val.it_interval;
    if (::setitimer(ITIMER_PROF, &val, nullptr) != 0) {
      g_armed.store(false, std::memory_order_release);
      return false;
    }
    state.itimer_fallback = true;
  }

  state.hz = hz;
  state.stop_aggregator.store(false, std::memory_order_release);
  state.aggregator = std::thread(&AggregatorLoop, &state);
  state.running = true;
  return true;
}

void StopProfiler() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.running) return;

  g_armed.store(false, std::memory_order_release);
  if (state.timer_valid) {
    itimerspec zero{};
    ::timer_settime(state.timer, 0, &zero, nullptr);
    ::timer_delete(state.timer);
    state.timer_valid = false;
  }
  if (state.itimer_fallback) {
    itimerval zero{};
    ::setitimer(ITIMER_PROF, &zero, nullptr);
    state.itimer_fallback = false;
  }

  state.stop_aggregator.store(true, std::memory_order_release);
  if (state.aggregator.joinable()) state.aggregator.join();
  state.running = false;
  state.hz = 0;
}

bool ProfilerRunning() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.running;
}

int ProfilerHz() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.hz;
}

uint64_t ProfilerSampleCount() {
  return g_samples.load(std::memory_order_relaxed);
}

uint64_t ProfilerDroppedCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string CollapsedProfile() {
  State& state = GetState();
  // Snapshot the aggregate (with a final drain so just-captured samples
  // are included), then symbolize outside the lock.
  std::map<std::vector<void*>, uint64_t> stacks;
  {
    std::lock_guard<std::mutex> lock(state.agg_mu);
    DrainRingsLocked(state);
    stacks = state.stacks;
  }

  // Symbolization collapses distinct return addresses inside one
  // function to one frame name, so re-key by the joined string and
  // merge counts.
  std::map<void*, std::string> symbol_cache;
  std::map<std::string, uint64_t> lines;
  for (const auto& [frames, count] : stacks) {
    std::string line;
    // backtrace() is leaf-first; collapsed format is root-first.
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      auto cached = symbol_cache.find(*it);
      if (cached == symbol_cache.end()) {
        cached = symbol_cache.emplace(*it, SymbolizeFrame(*it)).first;
      }
      if (!line.empty()) line += ';';
      line += cached->second;
    }
    if (!line.empty()) lines[line] += count;
  }

  std::string out;
  for (const auto& [line, count] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void ResetProfile() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.agg_mu);
  DrainRingsLocked(state);
  state.stacks.clear();
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string ProfileForSeconds(double seconds, int hz) {
  if (seconds <= 0.0) seconds = 1.0;
  if (seconds > 60.0) seconds = 60.0;
  const bool was_running = ProfilerRunning();
  if (!was_running && !StartProfiler(hz)) return std::string();
  ResetProfile();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  std::string collapsed = CollapsedProfile();
  if (!was_running) StopProfiler();
  return collapsed;
}

}  // namespace rdfdb::obs
