// Crash post-mortem black box: an mmap'd file the flight recorder
// keeps continuously up to date, so that when the process dies on
// SIGSEGV/SIGBUS/SIGABRT/SIGFPE or std::terminate, the installed
// handler only has async-signal-safe work left to do.
//
// The safety argument (DESIGN.md §15): everything expensive —
// serializing metric history, the event-log tail, the profiler
// aggregate — happens *before* the crash, on the recorder's sampler
// thread, written into pre-sized regions of the mapping. The handler
// itself does five things, all AS-safe: (1) claim the crash with an
// atomic exchange so concurrent faulting threads don't interleave,
// (2) record signo/tid/time/fault address into the header with plain
// stores, (3) backtrace(3) the faulting stack into a reserved array
// (backtrace is primed at install time, exactly like profiler.cc, so
// it never allocates in the handler) and backtrace_symbols_fd(3) the
// symbolized form straight to the file descriptor, (4) memcpy the raw
// active-op table into its region, (5) set the completion marker and
// msync(MS_SYNC). Even if msync is skipped — say the handler itself
// faults — the dirty pages live in the page cache, which survives
// process death; only a kernel panic or power loss loses them.
//
// The history region is double-buffered (two halves + an active-half
// selector published with release ordering), so a crash landing in
// the middle of a sampler write still leaves one complete snapshot.

#ifndef RDFDB_OBS_CRASH_DUMP_H_
#define RDFDB_OBS_CRASH_DUMP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/active_ops.h"

namespace rdfdb::obs {

inline constexpr char kBlackBoxMagic[8] = {'R', 'D', 'F', 'B',
                                           'B', 'X', '0', '1'};
inline constexpr uint32_t kBlackBoxVersion = 1;
inline constexpr int kBlackBoxMaxFrames = 96;

/// Location of one payload region inside the file. Offsets are from
/// the start of the file; `len` is what the writer last published.
/// Trivial (no initializers): the header is zeroed with memset and
/// reinterpreted from raw file bytes.
struct BlackBoxRegion {
  uint64_t offset;
  uint64_t capacity;
  uint64_t len;
};

/// Page 0 of the black-box file. POD on purpose: the handler writes
/// plain fields and a parsing process reinterprets the raw bytes.
struct BlackBoxHeader {
  char magic[8];
  uint32_t version;
  uint32_t state;  ///< 0 armed, 1 handler writing, 2 complete
  int32_t signo;   ///< 0 none; >0 fatal signal; -1 std::terminate
  int32_t reserved;
  uint64_t fault_tid;
  int64_t crash_unix_ns;
  uint64_t fault_addr;  ///< si_addr for SIGSEGV/SIGBUS, else 0
  uint32_t nframes;
  uint32_t history_active;  ///< which history half is published (0/1)
  uint64_t frames[kBlackBoxMaxFrames];  ///< raw faulting-stack PCs
  BlackBoxRegion history[2];            ///< double-buffered text
  BlackBoxRegion events;                ///< JSONL tail
  BlackBoxRegion profile;               ///< collapsed profiler aggregate
  BlackBoxRegion ops;                   ///< raw ActiveOpSlot table copy
  BlackBoxRegion stack;                 ///< backtrace_symbols_fd output
};
static_assert(sizeof(BlackBoxHeader) <= 4096, "header fits page 0");

/// The mmap'd black-box file. One writer (the flight recorder's
/// sampler thread) updates the payload regions; the crash handler
/// reads the region table and writes the header crash fields.
class BlackBox {
 public:
  /// Creates (or truncates) `path`, sizes it, maps it, and writes an
  /// armed header.
  static Result<std::unique_ptr<BlackBox>> OpenOrCreate(
      const std::string& path);

  ~BlackBox();
  BlackBox(const BlackBox&) = delete;
  BlackBox& operator=(const BlackBox&) = delete;

  /// Publish a new metric-history snapshot (writes the inactive half,
  /// then flips the selector with release ordering). Truncates to the
  /// half's capacity.
  void WriteHistory(std::string_view text);
  /// Publish the newest event-log JSONL tail / profiler aggregate.
  void WriteEventsTail(std::string_view text);
  void WriteProfile(std::string_view text);

  /// Nudge dirty pages toward disk (MS_ASYNC; cheap, advisory).
  void Sync();

  const BlackBoxHeader* header() const { return header_; }
  BlackBoxHeader* mutable_header() { return header_; }
  char* base() { return base_; }
  size_t size() const { return size_; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  BlackBox() = default;
  void WriteRegion(BlackBoxRegion* region, std::string_view text);

  std::string path_;
  int fd_ = -1;
  char* base_ = nullptr;
  size_t size_ = 0;
  BlackBoxHeader* header_ = nullptr;
};

/// Install the SIGSEGV/SIGBUS/SIGABRT/SIGFPE + std::terminate handler
/// writing into `box` (not owned; must outlive the armed window —
/// call DisarmCrashHandler before destroying it). Installs an
/// alternate signal stack so stack-overflow SIGSEGVs still dump.
/// Returns false if sigaction fails. Only one box can be armed per
/// process; a second install rebinds the handler to the new box.
bool InstallCrashHandler(BlackBox* box);

/// Restore default signal dispositions and forget the box.
void DisarmCrashHandler();

/// Parsed contents of a black-box file.
struct PostMortem {
  bool complete = false;  ///< handler reached the completion marker
  int signo = 0;          ///< -1 = std::terminate
  uint64_t fault_tid = 0;
  int64_t crash_unix_ns = 0;
  uint64_t fault_addr = 0;
  std::vector<uint64_t> frames;  ///< raw PCs of the faulting stack
  std::string symbolized_stack;  ///< backtrace_symbols_fd lines
  std::vector<ActiveOpInfo> ops;
  std::string history_text;  ///< flight-recorder history (text format)
  std::string events_tail;   ///< JSONL
  std::string profile;       ///< collapsed profiler aggregate
};

/// Read and validate a black-box file written by a (possibly crashed)
/// process.
Result<PostMortem> ReadBlackBox(const std::string& path);

/// Human-readable report: signal, time, faulting stack, in-flight
/// operations, event tail, profile summary. (Metric sparklines are
/// layered on by tools/rdfdb_postmortem via the flight recorder's
/// history parser.)
std::string RenderPostMortem(const PostMortem& pm);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_CRASH_DUMP_H_
