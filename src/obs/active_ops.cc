#include "obs/active_ops.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace rdfdb::obs {

namespace {

// Constant-initialized: safe to register into during static init and
// to memcpy from a signal handler.
ActiveOpSlot g_slots[kActiveOpSlots];

std::atomic<uint64_t> g_next_id{0};
std::atomic<uint64_t> g_registered{0};
std::atomic<uint64_t> g_dropped{0};

uint64_t Gettid() {
  return static_cast<uint64_t>(::syscall(SYS_gettid));
}

int64_t NowUnixNs() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

int64_t NowSteadyNs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

// Total CPU time another thread of this process has consumed, read
// from /proc/self/task/<tid>/schedstat (first field, nanoseconds).
// This is the one way to read a foreign thread's CPU clock that cannot
// dangle: pthread_getcpuclockid on an exited thread's pthread_t is UB,
// while a vanished /proc entry just fails the open. The schedstat
// clock and the owner's CLOCK_THREAD_CPUTIME_ID start basis differ by
// scheduler-tick granularity, so deltas are approximate and clamped
// to ≥0.
int64_t ThreadCpuNsFromProc(uint64_t tid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/self/task/%llu/schedstat",
                static_cast<unsigned long long>(tid));
  const int fd = ::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) return -1;
  char buf[96];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return -1;
  buf[n] = '\0';
  long long ns = -1;
  if (std::sscanf(buf, "%lld", &ns) != 1) return -1;
  return static_cast<int64_t>(ns);
}

// Plain (non-atomic) image of a slot, filled under seqlock validation.
struct SlotImage {
  uint32_t kind = 0;
  uint64_t id = 0;
  uint64_t tid = 0;
  int64_t start_unix_ns = 0;
  int64_t start_steady_ns = 0;
  int64_t start_cpu_ns = 0;
  uint64_t start_alloc_bytes = 0;
  uint64_t start_allocs = 0;
  const ThreadCounterBlock* counters = nullptr;
  char detail[kActiveOpDetailBytes] = {};
};

void LoadFields(const ActiveOpSlot& slot, SlotImage* out) {
  out->kind = slot.kind.load(std::memory_order_relaxed);
  out->id = slot.id.load(std::memory_order_relaxed);
  out->tid = slot.tid.load(std::memory_order_relaxed);
  out->start_unix_ns = slot.start_unix_ns.load(std::memory_order_relaxed);
  out->start_steady_ns = slot.start_steady_ns.load(std::memory_order_relaxed);
  out->start_cpu_ns = slot.start_cpu_ns.load(std::memory_order_relaxed);
  out->start_alloc_bytes =
      slot.start_alloc_bytes.load(std::memory_order_relaxed);
  out->start_allocs = slot.start_allocs.load(std::memory_order_relaxed);
  out->counters = slot.counters.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kActiveOpDetailBytes; ++i) {
    out->detail[i] = slot.detail[i].load(std::memory_order_relaxed);
  }
}

/// Seqlock read: false when the slot is free or could not be read
/// consistently within a few retries (writer mid-update).
bool ReadSlot(const ActiveOpSlot& slot, SlotImage* out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1u) continue;  // being written
    LoadFields(slot, out);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint32_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 == s2) return out->kind != 0;
  }
  return false;
}

ActiveOpInfo InfoFromImage(const SlotImage& image, int64_t now_unix_ns,
                           int64_t now_steady_ns, bool live) {
  ActiveOpInfo info;
  info.kind = static_cast<OpKind>(image.kind);
  info.id = image.id;
  info.tid = image.tid;
  info.start_unix_ns = image.start_unix_ns;
  info.age_ns = (live ? now_steady_ns - image.start_steady_ns
                      : now_unix_ns - image.start_unix_ns);
  if (info.age_ns < 0) info.age_ns = 0;
  if (live) {
    const int64_t cpu_now = ThreadCpuNsFromProc(image.tid);
    if (cpu_now >= 0) {
      info.cpu_ns = std::max<int64_t>(0, cpu_now - image.start_cpu_ns);
    }
    if (image.counters != nullptr) {
      const uint64_t bytes =
          image.counters->bytes.load(std::memory_order_relaxed);
      const uint64_t count =
          image.counters->count.load(std::memory_order_relaxed);
      if (bytes >= image.start_alloc_bytes) {
        info.alloc_bytes = bytes - image.start_alloc_bytes;
      }
      if (count >= image.start_allocs) {
        info.allocs = count - image.start_allocs;
      }
    }
  }
  const size_t len = ::strnlen(image.detail, kActiveOpDetailBytes);
  info.detail.assign(image.detail, len);
  return info;
}

void AppendOpJson(const ActiveOpInfo& op, std::string* out) {
  *out += "{\"kind\": \"";
  *out += OpKindName(op.kind);
  *out += "\", \"id\": " + std::to_string(op.id);
  *out += ", \"tid\": " + std::to_string(op.tid);
  *out += ", \"start_unix_ns\": " + std::to_string(op.start_unix_ns);
  *out += ", \"age_ms\": " + std::to_string(op.age_ns / 1'000'000);
  *out += ", \"cpu_ms\": " + std::to_string(op.cpu_ns / 1'000'000);
  *out += ", \"alloc_bytes\": " + std::to_string(op.alloc_bytes);
  *out += ", \"allocs\": " + std::to_string(op.allocs);
  *out += ", \"detail\": ";
  AppendJsonString(op.detail, out);
  *out += "}";
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kNone:
      return "none";
    case OpKind::kQuery:
      return "query";
    case OpKind::kExecWorker:
      return "exec_worker";
    case OpKind::kBulkLoad:
      return "bulkload";
    case OpKind::kCheckpoint:
      return "checkpoint";
    case OpKind::kReplay:
      return "replay";
    case OpKind::kServerRequest:
      return "server_request";
  }
  return "?";
}

ActiveOpGuard::ActiveOpGuard(OpKind kind, std::string_view detail) {
  id_ = g_next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  for (size_t i = 0; i < kActiveOpSlots; ++i) {
    ActiveOpSlot& slot = g_slots[i];
    uint32_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq & 1u) continue;
    if (slot.kind.load(std::memory_order_relaxed) != 0) continue;
    // The CAS is the exclusivity token: any concurrent claim/release
    // since we observed `seq` bumped it, so a stale observation fails
    // here instead of double-claiming the slot.
    if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      continue;
    }
    slot.id.store(id_, std::memory_order_relaxed);
    slot.tid.store(Gettid(), std::memory_order_relaxed);
    slot.start_unix_ns.store(NowUnixNs(), std::memory_order_relaxed);
    slot.start_steady_ns.store(NowSteadyNs(), std::memory_order_relaxed);
    slot.start_cpu_ns.store(ThreadCpuNanos(), std::memory_order_relaxed);
    slot.start_alloc_bytes.store(ThreadAllocatedBytes(),
                                 std::memory_order_relaxed);
    slot.start_allocs.store(ThreadAllocationCount(),
                            std::memory_order_relaxed);
    slot.counters.store(ThisThreadCounters(), std::memory_order_relaxed);
    const size_t len = std::min(detail.size(), kActiveOpDetailBytes - 1);
    for (size_t j = 0; j < len; ++j) {
      slot.detail[j].store(detail[j], std::memory_order_relaxed);
    }
    for (size_t j = len; j < kActiveOpDetailBytes; ++j) {
      slot.detail[j].store('\0', std::memory_order_relaxed);
    }
    slot.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // publish, even
    slot_ = &slot;
    g_registered.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_dropped.fetch_add(1, std::memory_order_relaxed);
}

ActiveOpGuard::~ActiveOpGuard() {
  if (slot_ == nullptr) return;
  // Only the owner releases, so plain increments suffice (no CAS).
  const uint32_t seq = slot_->seq.load(std::memory_order_relaxed);
  slot_->seq.store(seq + 1, std::memory_order_release);  // odd: in flux
  slot_->kind.store(0, std::memory_order_relaxed);
  slot_->counters.store(nullptr, std::memory_order_relaxed);
  slot_->seq.store(seq + 2, std::memory_order_release);  // even: free
}

size_t ActiveOpCount() {
  size_t n = 0;
  for (const ActiveOpSlot& slot : g_slots) {
    if (slot.kind.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

std::vector<ActiveOpInfo> ActiveOpsSnapshot() {
  const int64_t now_unix_ns = NowUnixNs();
  const int64_t now_steady_ns = NowSteadyNs();
  std::vector<ActiveOpInfo> out;
  SlotImage image;
  for (const ActiveOpSlot& slot : g_slots) {
    if (!ReadSlot(slot, &image)) continue;
    out.push_back(
        InfoFromImage(image, now_unix_ns, now_steady_ns, /*live=*/true));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ActiveOpInfo& a, const ActiveOpInfo& b) {
                     return a.start_unix_ns < b.start_unix_ns;
                   });
  return out;
}

uint64_t ActiveOpsRegistered() {
  return g_registered.load(std::memory_order_relaxed);
}
uint64_t ActiveOpsDropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string RenderActivityz() {
  const std::vector<ActiveOpInfo> ops = ActiveOpsSnapshot();
  std::string out = "{\n \"active\": " + std::to_string(ops.size());
  out += ",\n \"registered_total\": " + std::to_string(ActiveOpsRegistered());
  out += ",\n \"dropped_total\": " + std::to_string(ActiveOpsDropped());
  out += ",\n \"ops\": [";
  for (size_t i = 0; i < ops.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    AppendOpJson(ops[i], &out);
  }
  out += "\n ]\n}\n";
  return out;
}

std::string ActiveOpsSummaryExcluding(uint64_t exclude_id) {
  size_t counts[8] = {};
  for (const ActiveOpSlot& slot : g_slots) {
    SlotImage image;
    if (!ReadSlot(slot, &image)) continue;
    if (image.id == exclude_id) continue;
    if (image.kind < 8) ++counts[image.kind];
  }
  std::string out;
  for (uint32_t k = 1; k < 8; ++k) {
    if (counts[k] == 0) continue;
    if (!out.empty()) out += ' ';
    out += OpKindName(static_cast<OpKind>(k));
    out += ':';
    out += std::to_string(counts[k]);
  }
  return out;
}

const void* ActiveOpTableAddress() { return g_slots; }
size_t ActiveOpTableBytes() { return sizeof(g_slots); }

std::vector<ActiveOpInfo> ParseActiveOpTable(const void* data, size_t size,
                                             int64_t crash_unix_ns) {
  std::vector<ActiveOpInfo> out;
  const size_t slots = size / sizeof(ActiveOpSlot);
  for (size_t i = 0; i < slots; ++i) {
    // The copy is frozen — reinterpret the raw bytes through the same
    // layout. A slot that was odd (mid-claim/-release) at crash time
    // is still reported when `kind` is set: a possibly-torn detail
    // string beats dropping the operation that was on-CPU.
    SlotImage image;
    const auto* slot = reinterpret_cast<const ActiveOpSlot*>(
        static_cast<const char*>(data) + i * sizeof(ActiveOpSlot));
    LoadFields(*slot, &image);
    if (image.kind == 0 || image.kind >= 8) continue;
    out.push_back(InfoFromImage(image, crash_unix_ns, /*now_steady_ns=*/0,
                                /*live=*/false));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ActiveOpInfo& a, const ActiveOpInfo& b) {
                     return a.start_unix_ns < b.start_unix_ns;
                   });
  return out;
}

}  // namespace rdfdb::obs
