// In-process sampling CPU profiler with flamegraph export.
//
// A POSIX interval timer on CLOCK_PROCESS_CPUTIME_ID delivers SIGPROF
// `hz` times per second of *process CPU time* (an idle process is never
// interrupted — samples are proportional to cycles burned, which is
// exactly the flamegraph contract). The signal handler captures a raw
// stack with backtrace() into a preallocated lock-free ring owned by
// the interrupted thread; a background aggregator drains the rings and
// folds identical address stacks into counts. Symbolization
// (dladdr + __cxa_demangle) happens only at export time, never in the
// handler.
//
// Async-signal-safety argument (see DESIGN.md §13):
//   * The handler touches only: errno save/restore, gettid(2),
//     relaxed/acquire/release atomics, plain stores into the
//     preallocated ring, and backtrace(). glibc's backtrace mallocs
//     once on first use to bind libgcc's unwinder — Start() primes it
//     on the calling thread *before* arming the timer, so no handler
//     invocation ever allocates.
//   * Per-thread rings are claimed by tid via CAS over a fixed slot
//     array — no thread_local in the handler (first-touch TLS init is
//     not signal-safe), no locks, no dynamic allocation.
//   * Each ring is single-producer (the handler runs on the thread
//     that owns the slot) / single-consumer (the aggregator), with
//     release/acquire head publication.
//
// Modes: Start(hz) / Stop() bracket an explicit capture;
// StartAlwaysOn() arms the same machinery at a low rate (19 Hz) for
// continuous background profiling within the observability budget.
// CollapsedProfile() renders the aggregate as flamegraph collapsed
// lines ("frameRoot;frame;frameLeaf count\n"), root-first.

#ifndef RDFDB_OBS_PROFILER_H_
#define RDFDB_OBS_PROFILER_H_

#include <cstdint>
#include <string>

namespace rdfdb::obs {

/// Default rate for StartAlwaysOn(). Prime (well, 19) to avoid lockstep
/// with periodic work.
inline constexpr int kAlwaysOnHz = 19;

/// Arm the sampling timer at `hz` (clamped to [1, 1000]) and start the
/// aggregator thread. Returns false if the profiler is already running.
/// Rings are preallocated before the timer is armed.
bool StartProfiler(int hz);

/// Low-rate continuous mode: StartProfiler(kAlwaysOnHz).
inline bool StartAlwaysOn() { return StartProfiler(kAlwaysOnHz); }

/// Disarm the timer, drain the rings, stop the aggregator. Idempotent.
void StopProfiler();

bool ProfilerRunning();
int ProfilerHz();

/// Samples captured by the signal handler since the last ResetProfile()
/// (includes samples later folded, excludes nothing).
uint64_t ProfilerSampleCount();

/// Samples discarded because a ring was full or no slot was free.
uint64_t ProfilerDroppedCount();

/// Render everything aggregated so far in flamegraph collapsed format:
/// one "frame;frame;frame count\n" line per unique stack, root-first,
/// symbolized via dladdr and demangled. Empty string if no samples.
std::string CollapsedProfile();

/// Drop all aggregated stacks and zero the sample counters.
void ResetProfile();

/// Capture a fresh window: reset aggregation, sample for `seconds` at
/// `hz`, and return the collapsed profile. If the profiler is already
/// running (always-on mode), the window samples at the current rate and
/// leaves the profiler running; otherwise it is started and stopped
/// around the window. Blocking — callers (the /profilez endpoint) run
/// it on the serving thread while other threads do the work being
/// profiled.
std::string ProfileForSeconds(double seconds, int hz = 100);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_PROFILER_H_
