// Span timeline: named wall-time intervals from the parallel pipelines
// (bulk-load parse workers, ExecuteParallel join workers, inference
// rounds, snapshot tables, redo replay), exportable as Chrome
// trace-event JSON for chrome://tracing / Perfetto — the visual answer
// to "which worker is the straggler?".
//
// Spans carry a *lane* id (0 = the calling/consumer thread, 1..N =
// pipeline worker index) rather than an OS thread id, so two runs with
// the same skew produce the same picture regardless of thread-pool
// scheduling. Recording is a mutex push into a bounded vector — spans
// are chunk-/phase-grained, never per row — and a null Timeline pointer
// keeps every site to a single branch (see DESIGN.md §10).

#ifndef RDFDB_OBS_SPAN_TIMELINE_H_
#define RDFDB_OBS_SPAN_TIMELINE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rdfdb::obs {

struct SpanEvent {
  const char* name = "";      ///< static span name ("chunk_parse", ...)
  const char* category = "";  ///< subsystem ("bulkload", "exec", ...)
  uint32_t lane = 0;          ///< 0 = caller/consumer, 1..N = worker
  int64_t start_ns = 0;       ///< ns since the timeline's epoch
  int64_t dur_ns = 0;
  std::string detail;         ///< optional args payload (chunk index...)
};

class Timeline {
 public:
  /// `capacity` bounds retained spans; once full, new spans are counted
  /// as dropped (the prefix of a run is the interesting part when a
  /// capture overflows).
  explicit Timeline(size_t capacity = 1 << 16);

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Nanoseconds since the timeline was created (span time base).
  int64_t NowNs() const;

  /// Record a completed span. Thread-safe.
  void Record(SpanEvent span);

  /// Snapshot of the recorded spans in record order. Thread-safe.
  std::vector<SpanEvent> Spans() const;

  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Chrome trace-event JSON ("X" complete events, ts/dur in µs; lanes
  /// map to tids under one pid). Load via chrome://tracing or Perfetto.
  std::string ToChromeTraceJson() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> spans_;  // guarded by mu_
  uint64_t dropped_ = 0;          // guarded by mu_

};

/// RAII span: records [construction, destruction) into `timeline`
/// (nullptr = single-branch no-op).
class TimelineScope {
 public:
  TimelineScope(Timeline* timeline, const char* name, const char* category,
                uint32_t lane = 0, std::string detail = "")
      : timeline_(timeline) {
    if (timeline_ == nullptr) return;
    span_.name = name;
    span_.category = category;
    span_.lane = lane;
    span_.detail = std::move(detail);
    span_.start_ns = timeline_->NowNs();
  }
  TimelineScope(const TimelineScope&) = delete;
  TimelineScope& operator=(const TimelineScope&) = delete;
  ~TimelineScope() {
    if (timeline_ == nullptr) return;
    span_.dur_ns = timeline_->NowNs() - span_.start_ns;
    timeline_->Record(std::move(span_));
  }

 private:
  Timeline* timeline_;
  SpanEvent span_;
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_SPAN_TIMELINE_H_
