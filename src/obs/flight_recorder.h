// Flight recorder: the store's "what happened just before?" surface.
//
// A background sampler snapshots the metrics registry every N ms
// (default 1 s) through the existing MetricsSnapshot machinery and
// reduces each interval to a flat map of named series — counters as
// per-second rates, gauges raw, histograms as per-interval p50/p95/p99
// plus an observation rate — into a fixed-size history ring (default
// 120 points, so the default configuration always covers the last two
// minutes). /historyz renders the ring as JSON; `rdfdb_top --history`
// renders sparklines; and every tick the ring (plus the event-log tail
// and, periodically, the profiler aggregate) is re-serialized into the
// crash black box (crash_dump.h), which is what makes the post-mortem
// story work: the expensive serialization happens on this thread,
// before any crash.
//
// Synthetic series beyond the registry: `rdfdb_active_ops` (the
// active-operation registry's live count) and, when an EventLog is
// attached, `rdfdb_event_log_appended_total.rate` /
// `rdfdb_event_log_dropped_total.rate` — the PR 7 degraded-health
// signals (`rdfdb_version_retention_age_seconds`, event-log drops)
// therefore land in the ring automatically and a /healthz 503 can be
// explained retroactively from /historyz.

#ifndef RDFDB_OBS_FLIGHT_RECORDER_H_
#define RDFDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/crash_dump.h"
#include "obs/event_log.h"
#include "obs/metrics_snapshot.h"

namespace rdfdb::obs {

/// Defaults chosen so that a recorder left at its defaults always has
/// ≥30 s of history (120 points × 1 s = 2 minutes).
inline constexpr int64_t kDefaultSampleIntervalMs = 1000;
inline constexpr size_t kDefaultHistoryCapacity = 120;

/// One sampled interval: timestamp, actual interval length, and the
/// flat series map described above.
struct HistoryPoint {
  int64_t unix_ms = 0;    ///< wall-clock time at capture
  double interval_s = 0;  ///< measured distance to the previous sample
  std::map<std::string, double> series;
};

/// History ring in the portable text format stored in the black box
/// (and re-parsed by rdfdb_postmortem / the sparkline renderers).
struct ParsedHistory {
  int64_t interval_ms = 0;
  std::vector<int64_t> t_unix_ms;
  /// Missing points (series appeared mid-ring) are NaN.
  std::map<std::string, std::vector<double>> series;
};

class FlightRecorder {
 public:
  struct Options {
    /// Required. Must outlive the recorder. Non-const: the recorder
    /// registers its own `rdfdb_flight_samples_total` counter.
    MetricsRegistry* registry = nullptr;
    /// Optional event log whose tail is mirrored into the black box
    /// and whose append/drop rates become synthetic series.
    const EventLog* events = nullptr;
    /// Optional pre-sample hook (UpdateMemoryGauges and friends) so
    /// sampled gauges are fresh.
    std::function<void()> refresh;
    int64_t sample_interval_ms = kDefaultSampleIntervalMs;
    size_t history_capacity = kDefaultHistoryCapacity;
    /// When non-empty, maintain a crash black box at this path (the
    /// caller still decides whether to InstallCrashHandler on it).
    std::string black_box_path;
    /// Refresh the black box's profiler-aggregate region every this
    /// many ticks (symbolization is the one non-cheap step).
    size_t profile_every = 10;
  };

  /// Validates options, opens the black box (if requested), takes the
  /// baseline snapshot, and starts the sampler thread.
  static Result<std::unique_ptr<FlightRecorder>> Start(Options options);

  /// Stops the sampler thread.
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Take one sample immediately (test hook; also usable to force a
  /// fresh point before rendering). Thread-safe.
  void SampleNow();

  /// Copy of the ring, oldest first.
  std::vector<HistoryPoint> History() const;

  /// /historyz payload: {"interval_ms":…, "points":…, "t_unix_ms":[…],
  ///  "series":{"name":[…]}} with null for missing points.
  std::string RenderHistoryJson() const;

  /// The text format stored in the black box (see ParseHistoryText).
  std::string RenderHistoryText() const;

  uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  int64_t sample_interval_ms() const {
    return options_.sample_interval_ms;
  }
  /// Null unless Options::black_box_path was set.
  BlackBox* black_box() { return black_box_.get(); }

 private:
  explicit FlightRecorder(Options options);

  void SamplerLoop();
  void SampleLocked();  // caller holds sample_mu_
  std::string RenderHistoryTextLocked() const;  // caller holds ring_mu_

  Options options_;
  std::unique_ptr<BlackBox> black_box_;

  // Serializes SampleNow against the sampler thread; holds the
  // previous snapshot (the rate baseline).
  std::mutex sample_mu_;
  MetricsSnapshot prev_;
  uint64_t prev_events_appended_ = 0;
  uint64_t prev_events_dropped_ = 0;
  size_t ticks_ = 0;

  mutable std::mutex ring_mu_;
  std::deque<HistoryPoint> ring_;

  Counter* samples_metric_ = nullptr;
  std::atomic<uint64_t> samples_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread sampler_;  // started last, joined in the destructor
};

/// Parse the text-format history (strict; Corruption on malformed
/// input — the black box may hold a torn write if the process died
/// between the double-buffer flip and msync, and callers must know).
Result<ParsedHistory> ParseHistoryText(std::string_view text);

/// Unicode sparkline (▁▂▃▄▅▆▇█) scaled to the series' own min/max;
/// NaN renders as a space. Empty input yields an empty string.
std::string Sparkline(const std::vector<double>& values);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_FLIGHT_RECORDER_H_
