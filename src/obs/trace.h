// Per-query execution trace — an EXPLAIN ANALYZE for SDO_RDF_MATCH.
//
// A caller that wants the trace sets MatchOptions::trace to a
// QueryTrace it owns; SdoRdfMatch resets and fills it. With a null
// trace pointer every instrumentation site is one branch, so tracing
// is strictly opt-in (see DESIGN.md §8 for the anatomy).

#ifndef RDFDB_OBS_TRACE_H_
#define RDFDB_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"

namespace rdfdb::obs {

/// Per-worker activity of one ExecuteParallel run. Accumulated on the
/// consumer thread from per-chunk results; chunk-to-worker assignment
/// is scheduling-dependent, but the totals across workers equal the
/// chunk-ordered (deterministic) counters.
struct ExecWorkerTrace {
  size_t worker = 0;        ///< 1-based worker index (lane id)
  size_t chunks = 0;        ///< outer-frame chunks this worker joined
  size_t rows_emitted = 0;  ///< rows produced across those chunks
  int64_t busy_ns = 0;      ///< wall time spent inside chunk joins
  int64_t cpu_ns = 0;       ///< thread CPU time inside chunk joins
  uint64_t bytes_allocated = 0;  ///< heap bytes allocated in chunk joins
};

/// One executed triple pattern (one join step), in execution order.
struct PatternTrace {
  size_t pattern_index = 0;  ///< position of the pattern as written
  std::string text;          ///< "(?s <uri> ?o)" rendering
  size_t rows_scanned = 0;   ///< candidate triples the source yielded
  size_t rows_emitted = 0;   ///< partial bindings alive after this step
};

struct QueryTrace {
  // Plan.
  std::vector<size_t> plan_order;  ///< written-order indexes, exec order
  bool reordered = false;          ///< planner was allowed to reorder
  bool used_rules_index = false;   ///< pre-built RDFI_ index served inference
  bool dead_constant = false;      ///< constant term absent from rdf_value$
                                   ///< short-circuited to zero rows

  // Execution, one entry per pattern in execution order.
  std::vector<PatternTrace> patterns;

  // Dictionary traffic.
  size_t value_lookups = 0;        ///< constant-term rdf_value$ probes
  size_t value_lookup_misses = 0;  ///< probes that found nothing
  size_t value_resolutions = 0;    ///< ids materialised back to Terms

  // Row shaping.
  size_t filter_evaluations = 0;
  size_t filter_rejections = 0;
  size_t distinct_drops = 0;  ///< rows dropped by DISTINCT dedupe
  size_t rows_emitted = 0;    ///< final result rows

  // Inference.
  size_t inference_rounds = 0;
  size_t inferred_triples = 0;

  // Parallel execution (compiled executor). Worker counters are merged
  // on the consumer thread in chunk order, so these and the per-pattern
  // counts stay deterministic; a LIMIT-stopped parallel run may scan
  // more than its sequential twin (whole chunks run to completion).
  size_t exec_threads = 1;  ///< worker threads the join executor used
  size_t exec_chunks = 0;   ///< outer-frame chunks dispatched (parallel)
  std::vector<ExecWorkerTrace> exec_workers;  ///< one entry per worker

  // Resource attribution (obs/resource_tracker.h): CPU time and heap
  // allocation charged to this query — the calling thread's scope plus
  // the summed deltas of every parallel worker's chunk scopes.
  int64_t cpu_ns = 0;
  uint64_t bytes_allocated = 0;
  uint64_t allocations = 0;

  // Stage wall times (ns). exec_ns covers the join loop including
  // filtering and emission, so resolve_ns overlaps it.
  int64_t parse_ns = 0;
  int64_t plan_ns = 0;
  int64_t infer_ns = 0;
  int64_t exec_ns = 0;
  int64_t resolve_ns = 0;
  int64_t total_ns = 0;

  /// Multi-line human-readable rendering (EXPLAIN ANALYZE style).
  std::string ToString() const;
};

/// RAII span accumulating elapsed nanoseconds into a nullable sink.
/// `ScopedSpan span(trace ? &trace->parse_ns : nullptr);`
class ScopedSpan {
 public:
  explicit ScopedSpan(int64_t* sink_ns) : sink_ns_(sink_ns) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (sink_ns_ != nullptr) *sink_ns_ += timer_.ElapsedNanos();
  }

 private:
  int64_t* sink_ns_;
  Timer timer_;
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_TRACE_H_
