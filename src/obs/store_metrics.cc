#include "obs/store_metrics.h"

namespace rdfdb::obs {

StoreMetrics::StoreMetrics(MetricsRegistry* reg) : registry(reg) {
  value_lookups = reg->RegisterCounter(
      "rdfdb_value_lookups_total", "rdf_value$ dictionary probes");
  value_lookup_hits = reg->RegisterCounter(
      "rdfdb_value_lookup_hits_total", "dictionary probes that hit");
  value_inserts = reg->RegisterCounter(
      "rdfdb_value_inserts_total", "new rdf_value$/rdf_blank_node$ rows");
  value_batch_terms = reg->RegisterCounter(
      "rdfdb_value_batch_terms_total",
      "terms presented to LookupOrInsertBatch");
  value_intern_cache_hits = reg->RegisterCounter(
      "rdfdb_value_intern_cache_hits_total",
      "batch terms resolved from the loader intern cache");

  link_inserts = reg->RegisterCounter(
      "rdfdb_link_inserts_total", "new rdf_link$ rows");
  link_duplicates = reg->RegisterCounter(
      "rdfdb_link_duplicates_total",
      "triple inserts folded into an existing rdf_link$ row");
  link_deletes = reg->RegisterCounter(
      "rdfdb_link_deletes_total", "rdf_link$ delete operations");
  link_rows_scanned = reg->RegisterCounter(
      "rdfdb_link_rows_scanned_total",
      "rdf_link$ rows visited by Match/ScanModel");

  reif_checks = reg->RegisterCounter(
      "rdfdb_reif_checks_total", "IsLinkReified probes");
  reif_dburi_resolutions = reg->RegisterCounter(
      "rdfdb_reif_dburi_resolutions_total",
      "DBUri strings resolved back to link ids");

  queries = reg->RegisterCounter(
      "rdfdb_query_total", "SDO_RDF_MATCH executions");
  query_rows = reg->RegisterCounter(
      "rdfdb_query_rows_total", "result rows returned by SDO_RDF_MATCH");
  query_ns = reg->RegisterHistogram(
      "rdfdb_query_ns", "end-to-end SDO_RDF_MATCH latency (ns)",
      DefaultLatencyBucketsNs());
  query_cpu_ns = reg->RegisterCounter(
      "rdfdb_query_cpu_ns_total",
      "CPU nanoseconds attributed to queries across all threads");
  query_alloc_bytes = reg->RegisterCounter(
      "rdfdb_query_alloc_bytes_total",
      "heap bytes allocated while executing queries");

  inference_rounds = reg->RegisterCounter(
      "rdfdb_inference_rounds_total", "entailment fixpoint rounds");
  inference_derived = reg->RegisterCounter(
      "rdfdb_inference_derived_total",
      "distinct inferred triples retained by entailment");

  bulkload_statements = reg->RegisterCounter(
      "rdfdb_bulkload_statements_total", "statements consumed by bulk load");
  bulkload_chunks = reg->RegisterCounter(
      "rdfdb_bulkload_chunks_total", "chunks through the load pipeline");
  bulkload_queue_depth = reg->RegisterGauge(
      "rdfdb_bulkload_queue_depth",
      "pipeline high-water mark of produced-but-unconsumed chunks");
  bulkload_parse_ns = reg->RegisterHistogram(
      "rdfdb_bulkload_parse_ns", "per-chunk parse/prepare time (ns)",
      DefaultLatencyBucketsNs());
  bulkload_intern_ns = reg->RegisterHistogram(
      "rdfdb_bulkload_intern_ns", "per-chunk batched intern time (ns)",
      DefaultLatencyBucketsNs());
  bulkload_insert_ns = reg->RegisterHistogram(
      "rdfdb_bulkload_insert_ns", "per-chunk rdf_link$ insert time (ns)",
      DefaultLatencyBucketsNs());

  snapshot_saves = reg->RegisterCounter(
      "rdfdb_snapshot_saves_total", "snapshot save operations");
  snapshot_loads = reg->RegisterCounter(
      "rdfdb_snapshot_loads_total", "snapshot load (RdfStore::Open) calls");
  snapshot_save_ns = reg->RegisterHistogram(
      "rdfdb_snapshot_save_ns", "snapshot save latency (ns)",
      DefaultLatencyBucketsNs());
  snapshot_load_ns = reg->RegisterHistogram(
      "rdfdb_snapshot_load_ns", "snapshot open latency (ns)",
      DefaultLatencyBucketsNs());
  replay_records = reg->RegisterCounter(
      "rdfdb_replay_records_total", "redo-log records applied");
  replay_ns = reg->RegisterHistogram(
      "rdfdb_replay_ns", "redo-log replay latency (ns)",
      DefaultLatencyBucketsNs());
  replay_torn_tails = reg->RegisterCounter(
      "rdfdb_replay_torn_tails_total",
      "torn final redo-log records dropped during replay");
  replay_stale_skipped = reg->RegisterCounter(
      "rdfdb_replay_stale_skipped_total",
      "pre-checkpoint redo-log records skipped by seq during replay");
  recovery_opens = reg->RegisterCounter(
      "rdfdb_recovery_opens_total",
      "LoggedRdfStore::Open crash-recovery cycles");

  versions_published = reg->RegisterCounter(
      "rdfdb_versions_published_total",
      "immutable store versions published by the snapshot store");
  publish_ns = reg->RegisterHistogram(
      "rdfdb_publish_ns",
      "store-version publish latency: build + swap + sweep (ns)",
      DefaultLatencyBucketsNs());
  retired_versions = reg->RegisterGauge(
      "rdfdb_retired_versions_outstanding",
      "store versions retired but still pinned by a reader epoch");
  epoch_lag = reg->RegisterGauge(
      "rdfdb_oldest_pinned_epoch_lag",
      "current epoch minus the oldest pinned reader epoch (0 = idle)");
  retention_age_seconds = reg->RegisterGauge(
      "rdfdb_version_retention_age_seconds",
      "seconds the oldest retired store version has been blocked from "
      "reclamation by a pinned reader epoch (0 = nothing retained)");

  mem_value_store_bytes = reg->RegisterGauge(
      "rdfdb_mem_value_store_bytes",
      "approx heap bytes: rdf_value$/rdf_blank_node$ rows + indexes");
  mem_link_table_bytes = reg->RegisterGauge(
      "rdfdb_mem_link_table_bytes",
      "approx heap bytes: rdf_link$/rdf_node$ rows + indexes");
  mem_quad_cache_bytes = reg->RegisterGauge(
      "rdfdb_mem_quad_cache_bytes",
      "approx heap bytes: per-model id-native quad caches");
  mem_term_dict_bytes = reg->RegisterGauge(
      "rdfdb_mem_term_dict_bytes",
      "approx heap bytes: lock-free term dictionary spine + tables");
  mem_retired_version_bytes = reg->RegisterGauge(
      "rdfdb_mem_retired_version_bytes",
      "approx exclusive heap bytes held by retired store versions");
  mem_tracked_heap_bytes = reg->RegisterGauge(
      "rdfdb_mem_tracked_heap_bytes",
      "process-wide live heap bytes tracked by the allocator hooks");

  active_operations = reg->RegisterGauge(
      "rdfdb_active_operations",
      "operations currently registered in the active-op table");
}

}  // namespace rdfdb::obs
