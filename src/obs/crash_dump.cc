#include "obs/crash_dump.h"

#include <errno.h>
#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

namespace rdfdb::obs {

namespace {

// File layout. The header gets page 0; payload regions follow, each
// page-aligned so a partial msync never straddles two of them.
constexpr size_t kHeaderBytes = 4096;
constexpr size_t kHistoryHalfBytes = 128 * 1024;
constexpr size_t kEventsBytes = 32 * 1024;
constexpr size_t kProfileBytes = 64 * 1024;
constexpr size_t kOpsBytes = 16 * 1024;
constexpr size_t kStackBytes = 16 * 1024;
constexpr size_t kFileBytes = kHeaderBytes + 2 * kHistoryHalfBytes +
                              kEventsBytes + kProfileBytes + kOpsBytes +
                              kStackBytes;

static_assert(kOpsBytes >= kActiveOpSlots * sizeof(ActiveOpSlot),
              "ops region holds the whole table");

// Handler state. Plain pointers set before arming, read by the
// handler; the claim token serializes concurrent faulting threads.
BlackBoxHeader* g_header = nullptr;
char* g_base = nullptr;
size_t g_size = 0;
int g_fd = -1;
std::atomic<int> g_crash_claimed{0};
std::terminate_handler g_prev_terminate = nullptr;
bool g_installed = false;

// Alternate stack so a stack-overflow SIGSEGV still reaches the
// handler. Static: nothing to allocate at crash time.
alignas(16) char g_altstack[64 * 1024];

int64_t UnixNowNs() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

// Shared tail of both crash paths (signal handler and terminate
// handler). Everything here is async-signal-safe: plain stores into
// the mapping, primed backtrace(3), memcpy, write-path syscalls.
void FillCrashRecord(int signo, uint64_t fault_addr, int skip_frames) {
  BlackBoxHeader* hdr = g_header;
  if (hdr == nullptr) return;
  hdr->state = 1;
  hdr->signo = signo;
  hdr->fault_tid = static_cast<uint64_t>(::syscall(SYS_gettid));
  hdr->crash_unix_ns = UnixNowNs();
  hdr->fault_addr = fault_addr;

  static void* frames[kBlackBoxMaxFrames];  // static: no stack growth
  int nframes = ::backtrace(frames, kBlackBoxMaxFrames);
  if (nframes < 0) nframes = 0;
  const int skip = nframes > skip_frames ? skip_frames : 0;
  hdr->nframes = static_cast<uint32_t>(nframes - skip);
  for (int i = skip; i < nframes; ++i) {
    hdr->frames[i - skip] = reinterpret_cast<uint64_t>(frames[i]);
  }

  // Freeze the active-operation table: who was mid-flight at the
  // fault. Raw byte copy; the post-mortem tool re-parses the layout.
  const size_t ops_len =
      std::min<size_t>(hdr->ops.capacity, ActiveOpTableBytes());
  ::memcpy(g_base + hdr->ops.offset, ActiveOpTableAddress(), ops_len);
  hdr->ops.len = ops_len;

  // Symbolized stack straight to the fd (backtrace_symbols_fd is the
  // AS-safe sibling of backtrace_symbols — no malloc). The fd writes
  // and the mapping are the same file, so they are coherent.
  if (g_fd >= 0 &&
      ::lseek(g_fd, static_cast<off_t>(hdr->stack.offset), SEEK_SET) >= 0) {
    ::backtrace_symbols_fd(frames + skip, nframes - skip, g_fd);
    const off_t end = ::lseek(g_fd, 0, SEEK_CUR);
    const off_t begin = static_cast<off_t>(hdr->stack.offset);
    if (end > begin) {
      hdr->stack.len = std::min<uint64_t>(
          static_cast<uint64_t>(end - begin), hdr->stack.capacity);
    }
  }

  hdr->state = 2;  // completion marker: the dump is fully written
  ::msync(g_base, g_size, MS_SYNC);
}

void RestoreAndRaise(int signo) {
  struct sigaction dfl;
  ::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(signo, &dfl, nullptr);
  sigset_t unblock;
  ::sigemptyset(&unblock);
  ::sigaddset(&unblock, signo);
  ::sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
  ::raise(signo);
}

void CrashSignalHandler(int signo, siginfo_t* info, void* /*uc*/) {
  // First faulting thread wins; the rest wait for the dump and then
  // die with the default disposition (the claim winner re-raises and
  // kills the process anyway, so the sleep is just to stay out of the
  // winner's way).
  if (g_crash_claimed.exchange(1, std::memory_order_acq_rel) != 0) {
    timespec wait{5, 0};
    ::nanosleep(&wait, nullptr);
    RestoreAndRaise(signo);
    return;
  }
  const uint64_t fault_addr =
      (signo == SIGSEGV || signo == SIGBUS) && info != nullptr
          ? reinterpret_cast<uint64_t>(info->si_addr)
          : 0;
  // Skip the handler frame and the kernel signal trampoline so the
  // reported stack leads with the faulting PC's frame.
  FillCrashRecord(signo, fault_addr, /*skip_frames=*/2);
  RestoreAndRaise(signo);
}

void CrashTerminateHandler() {
  if (g_crash_claimed.exchange(1, std::memory_order_acq_rel) == 0) {
    FillCrashRecord(/*signo=*/-1, /*fault_addr=*/0, /*skip_frames=*/1);
  }
  // abort() raises SIGABRT; our SIGABRT handler would find the crash
  // already claimed — restore the default first so the process dies
  // with the conventional disposition (core, if enabled).
  struct sigaction dfl;
  ::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigemptyset(&dfl.sa_mask);
  ::sigaction(SIGABRT, &dfl, nullptr);
  std::abort();
}

void InitRegionTable(BlackBoxHeader* hdr) {
  ::memset(hdr, 0, sizeof(*hdr));
  ::memcpy(hdr->magic, kBlackBoxMagic, sizeof(hdr->magic));
  hdr->version = kBlackBoxVersion;
  uint64_t off = kHeaderBytes;
  auto place = [&off](BlackBoxRegion* region, uint64_t capacity) {
    region->offset = off;
    region->capacity = capacity;
    region->len = 0;
    off += capacity;
  };
  place(&hdr->history[0], kHistoryHalfBytes);
  place(&hdr->history[1], kHistoryHalfBytes);
  place(&hdr->events, kEventsBytes);
  place(&hdr->profile, kProfileBytes);
  place(&hdr->ops, kOpsBytes);
  place(&hdr->stack, kStackBytes);
}

}  // namespace

Result<std::unique_ptr<BlackBox>> BlackBox::OpenOrCreate(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IOError("black box open(" + path +
                           "): " + ::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(kFileBytes)) != 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::IOError("black box ftruncate(" + path + "): " + err);
  }
  void* base = ::mmap(nullptr, kFileBytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::IOError("black box mmap(" + path + "): " + err);
  }
  auto box = std::unique_ptr<BlackBox>(new BlackBox());
  box->path_ = path;
  box->fd_ = fd;
  box->base_ = static_cast<char*>(base);
  box->size_ = kFileBytes;
  box->header_ = reinterpret_cast<BlackBoxHeader*>(base);
  InitRegionTable(box->header_);
  ::msync(base, kHeaderBytes, MS_ASYNC);
  return box;
}

BlackBox::~BlackBox() {
  if (g_header == header_) DisarmCrashHandler();
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void BlackBox::WriteRegion(BlackBoxRegion* region, std::string_view text) {
  const size_t len = std::min<size_t>(text.size(), region->capacity);
  ::memcpy(base_ + region->offset, text.data(), len);
  region->len = len;
}

void BlackBox::WriteHistory(std::string_view text) {
  const uint32_t inactive = 1u - (header_->history_active & 1u);
  WriteRegion(&header_->history[inactive], text);
  // Publish after the content is in place so a crash mid-write always
  // leaves one complete snapshot behind the selector.
  __atomic_store_n(&header_->history_active, inactive, __ATOMIC_RELEASE);
}

void BlackBox::WriteEventsTail(std::string_view text) {
  WriteRegion(&header_->events, text);
}

void BlackBox::WriteProfile(std::string_view text) {
  WriteRegion(&header_->profile, text);
}

void BlackBox::Sync() { ::msync(base_, size_, MS_ASYNC); }

bool InstallCrashHandler(BlackBox* box) {
  if (box == nullptr) return false;

  // Prime backtrace(): its first call binds libgcc's unwinder with a
  // one-time allocation that must not happen inside the handler
  // (same discipline as profiler.cc).
  void* prime[4];
  ::backtrace(prime, 4);
  // Prime backtrace_symbols_fd too (resolves dladdr tables lazily).
  const int devnull = ::open("/dev/null", O_WRONLY | O_CLOEXEC);
  if (devnull >= 0) {
    ::backtrace_symbols_fd(prime, 1, devnull);
    ::close(devnull);
  }

  g_header = box->mutable_header();
  g_base = box->base();
  g_size = box->size();
  g_fd = box->fd();
  g_crash_claimed.store(0, std::memory_order_release);

  stack_t altstack{};
  altstack.ss_sp = g_altstack;
  altstack.ss_size = sizeof(g_altstack);
  altstack.ss_flags = 0;
  ::sigaltstack(&altstack, nullptr);

  struct sigaction action;
  ::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &CrashSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_ONSTACK;
  ::sigemptyset(&action.sa_mask);
  for (const int signo : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE}) {
    if (::sigaction(signo, &action, nullptr) != 0) {
      DisarmCrashHandler();
      return false;
    }
  }
  if (!g_installed) g_prev_terminate = std::set_terminate(&CrashTerminateHandler);
  g_installed = true;
  return true;
}

void DisarmCrashHandler() {
  if (g_installed) {
    struct sigaction dfl;
    ::memset(&dfl, 0, sizeof(dfl));
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    for (const int signo : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE}) {
      ::sigaction(signo, &dfl, nullptr);
    }
    std::set_terminate(g_prev_terminate);
    g_installed = false;
  }
  g_header = nullptr;
  g_base = nullptr;
  g_size = 0;
  g_fd = -1;
}

Result<PostMortem> ReadBlackBox(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open black box " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  if (data.size() < sizeof(BlackBoxHeader)) {
    return Status::Corruption("black box truncated: " + path);
  }
  BlackBoxHeader hdr;
  ::memcpy(&hdr, data.data(), sizeof(hdr));
  if (::memcmp(hdr.magic, kBlackBoxMagic, sizeof(hdr.magic)) != 0) {
    return Status::Corruption("black box bad magic: " + path);
  }
  if (hdr.version != kBlackBoxVersion) {
    return Status::NotSupported("black box version " +
                                std::to_string(hdr.version));
  }

  auto region_text = [&data, &path](const BlackBoxRegion& region)
      -> Result<std::string> {
    if (region.len == 0) return std::string();
    if (region.offset > data.size() || region.len > region.capacity ||
        region.offset + region.len > data.size()) {
      return Status::Corruption("black box region out of bounds: " + path);
    }
    return data.substr(region.offset, region.len);
  };

  PostMortem pm;
  pm.complete = hdr.state == 2;
  pm.signo = hdr.signo;
  pm.fault_tid = hdr.fault_tid;
  pm.crash_unix_ns = hdr.crash_unix_ns;
  pm.fault_addr = hdr.fault_addr;
  const uint32_t nframes =
      std::min<uint32_t>(hdr.nframes, kBlackBoxMaxFrames);
  pm.frames.assign(hdr.frames, hdr.frames + nframes);
  RDFDB_ASSIGN_OR_RETURN(pm.symbolized_stack, region_text(hdr.stack));
  RDFDB_ASSIGN_OR_RETURN(
      pm.history_text, region_text(hdr.history[hdr.history_active & 1u]));
  RDFDB_ASSIGN_OR_RETURN(pm.events_tail, region_text(hdr.events));
  RDFDB_ASSIGN_OR_RETURN(pm.profile, region_text(hdr.profile));

  std::string ops_raw;
  RDFDB_ASSIGN_OR_RETURN(ops_raw, region_text(hdr.ops));
  if (!ops_raw.empty()) {
    pm.ops = ParseActiveOpTable(ops_raw.data(), ops_raw.size(),
                                hdr.crash_unix_ns);
  }
  return pm;
}

namespace {

std::string SignalName(int signo) {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGABRT:
      return "SIGABRT";
    case SIGFPE:
      return "SIGFPE";
    case -1:
      return "std::terminate";
    case 0:
      return "none";
  }
  return "signal " + std::to_string(signo);
}

std::string FormatUnixNs(int64_t unix_ns) {
  const time_t secs = static_cast<time_t>(unix_ns / 1'000'000'000);
  tm tm_utc{};
  ::gmtime_r(&secs, &tm_utc);
  char buf[64];
  ::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_utc);
  char out[96];
  std::snprintf(out, sizeof(out), "%s.%03d UTC", buf,
                static_cast<int>((unix_ns / 1'000'000) % 1000));
  return out;
}

}  // namespace

std::string RenderPostMortem(const PostMortem& pm) {
  std::string out;
  out += "=== rdfdb post-mortem ===\n";
  out += "cause:      " + SignalName(pm.signo) + "\n";
  out += "time:       " + FormatUnixNs(pm.crash_unix_ns) + "\n";
  out += "fault tid:  " + std::to_string(pm.fault_tid) + "\n";
  if (pm.signo == SIGSEGV || pm.signo == SIGBUS) {
    char addr[32];
    std::snprintf(addr, sizeof(addr), "0x%llx",
                  static_cast<unsigned long long>(pm.fault_addr));
    out += "fault addr: ";
    out += addr;
    out += "\n";
  }
  out += std::string("dump:       ") +
         (pm.complete ? "complete" : "INCOMPLETE (handler interrupted)") +
         "\n";

  out += "\n--- faulting stack (" + std::to_string(pm.frames.size()) +
         " frames) ---\n";
  if (!pm.symbolized_stack.empty()) {
    out += pm.symbolized_stack;
    if (out.back() != '\n') out += '\n';
  } else {
    for (const uint64_t pc : pm.frames) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "  0x%llx\n",
                    static_cast<unsigned long long>(pc));
      out += buf;
    }
  }

  out += "\n--- in-flight operations (" + std::to_string(pm.ops.size()) +
         ") ---\n";
  for (const ActiveOpInfo& op : pm.ops) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  #%llu %-11s tid=%llu age=%.3fs  ",
                  static_cast<unsigned long long>(op.id), OpKindName(op.kind),
                  static_cast<unsigned long long>(op.tid),
                  static_cast<double>(op.age_ns) / 1e9);
    out += line;
    out += op.detail;
    out += '\n';
  }

  if (!pm.events_tail.empty()) {
    out += "\n--- last events ---\n";
    out += pm.events_tail;
    if (out.back() != '\n') out += '\n';
  }
  if (!pm.profile.empty()) {
    out += "\n--- last profiler aggregate (collapsed) ---\n";
    out += pm.profile;
    if (out.back() != '\n') out += '\n';
  }
  return out;
}

}  // namespace rdfdb::obs
