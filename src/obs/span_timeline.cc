#include "obs/span_timeline.h"

#include <cstdio>

#include "obs/json.h"

namespace rdfdb::obs {

Timeline::Timeline(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t Timeline::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Timeline::Record(SpanEvent span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanEvent> Timeline::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Timeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

uint64_t Timeline::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Timeline::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

std::string Timeline::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const SpanEvent& span : spans_) {
    if (!first) out += ",";
    first = false;
    out += "\n {\"name\":";
    AppendJsonString(span.name, &out);
    out += ",\"cat\":";
    AppendJsonString(span.category, &out);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f",
                  span.lane, static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.dur_ns) / 1e3);
    out += buf;
    if (!span.detail.empty()) {
      out += ",\"args\":{\"detail\":";
      AppendJsonString(span.detail, &out);
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace rdfdb::obs
