#include "obs/slow_query_log.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace rdfdb::obs {

SlowQueryLog::SlowQueryLog(int64_t threshold_ns, size_t capacity)
    : threshold_ns_(threshold_ns),
      capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void SlowQueryLog::Record(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = captured_++;
  entry.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
  if (entries_.size() == capacity_) entries_.pop_front();
  entries_.push_back(std::move(entry));
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

std::string SlowQueryLog::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "slow query log: " << captured_ << " captured over "
      << static_cast<double>(threshold_ns_) / 1e6 << " ms, "
      << entries_.size() << " retained\n";
  for (const Entry& entry : entries_) {
    char head[192];
    std::snprintf(head, sizeof(head),
                  "#%llu +%.3fs %.2fms cpu=%.2fms alloc=%lluB %zu row(s) "
                  "[%s] ",
                  static_cast<unsigned long long>(entry.id),
                  static_cast<double>(entry.ts_us) / 1e6,
                  static_cast<double>(entry.total_ns) / 1e6,
                  static_cast<double>(entry.trace.cpu_ns) / 1e6,
                  static_cast<unsigned long long>(entry.trace.bytes_allocated),
                  entry.rows, entry.models.c_str());
    out << head << entry.query;
    if (entry.concurrent_ops > 0) {
      out << "  (concurrent: " << entry.concurrent << ")";
    }
    out << "\n";
    // Indent the trace under its header line.
    std::istringstream trace(entry.trace.ToString());
    std::string line;
    while (std::getline(trace, line)) out << "    " << line << "\n";
  }
  return out.str();
}

std::string SlowQueryLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"id\": " + std::to_string(entry.id) +
           ", \"ts_us\": " + std::to_string(entry.ts_us) + ", \"query\": ";
    AppendJsonString(entry.query, &out);
    out += ", \"models\": ";
    AppendJsonString(entry.models, &out);
    out += ", \"rows\": " + std::to_string(entry.rows) +
           ", \"total_ns\": " + std::to_string(entry.total_ns) +
           ", \"exec_ns\": " + std::to_string(entry.trace.exec_ns) +
           ", \"plan_ns\": " + std::to_string(entry.trace.plan_ns) +
           ", \"threads\": " + std::to_string(entry.trace.exec_threads) +
           ", \"cpu_ns\": " + std::to_string(entry.trace.cpu_ns) +
           ", \"bytes_allocated\": " +
           std::to_string(entry.trace.bytes_allocated) +
           ", \"allocations\": " + std::to_string(entry.trace.allocations) +
           ", \"concurrent_ops\": " + std::to_string(entry.concurrent_ops) +
           ", \"concurrent\": ";
    AppendJsonString(entry.concurrent, &out);
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace rdfdb::obs
