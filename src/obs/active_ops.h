// Active-operation registry: a pg_stat_activity analog for the store.
//
// Long-running entry points (SDO_RDF_MATCH, parallel-executor workers,
// bulk load, checkpoint, redo replay) register themselves in a small
// fixed slot table via an RAII guard. Each slot records what the
// operation is (kind + a short detail string such as the pattern
// text), when it started, which thread runs it, and a pointer to that
// thread's leaked allocation-counter block — so any observer thread
// can compute *live* cpu/alloc deltas for in-flight work without
// cooperation from the operating thread. /activityz renders the table,
// the slow-query log embeds a summary of concurrent operations, and
// the crash handler byte-copies the raw table into the black box (the
// post-mortem tool re-parses it with ParseActiveOpTable).
//
// Concurrency design — the table must be readable from a signal
// handler and writable on the query hot path:
//   * Each slot is an independent seqlock. A writer claims a free slot
//     by CAS'ing `seq` from its observed even value to odd (the CAS
//     doubles as the exclusivity token: any concurrent fill/release
//     bumps seq, failing the CAS), fills the fields with relaxed
//     stores, then publishes with a release store of seq+2 (even
//     again). Release re-enters odd, zeroes `kind`, and exits even.
//   * Readers retry a slot when seq is odd or changes across the read
//     (standard seqlock validation); every field is a relaxed atomic,
//     so torn reads are impossible and TSan sees no race.
//   * Registration never blocks and never allocates: when all slots
//     are busy the guard degrades to unregistered (counted in
//     ActiveOpsDropped()) and the operation runs untracked.
//   * The table is a constant-initialized global array — the crash
//     handler may memcpy it without taking locks or touching the heap.

#ifndef RDFDB_OBS_ACTIVE_OPS_H_
#define RDFDB_OBS_ACTIVE_OPS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/resource_tracker.h"

namespace rdfdb::obs {

/// What kind of work a slot describes. Values are stable wire format
/// (they appear in black-box dumps parsed by a different process).
enum class OpKind : uint32_t {
  kNone = 0,
  kQuery = 1,       ///< SdoRdfMatch
  kExecWorker = 2,  ///< ExecuteParallel chunk worker
  kBulkLoad = 3,
  kCheckpoint = 4,
  kReplay = 5,         ///< redo-log replay
  kServerRequest = 6,  ///< network front-end request (server/server.h)
};

/// Stable lowercase name ("query", "bulkload", ...); "none"/"?" for
/// kNone / out-of-range values.
const char* OpKindName(OpKind kind);

inline constexpr size_t kActiveOpSlots = 64;
inline constexpr size_t kActiveOpDetailBytes = 96;

/// One slot of the registry. All fields are atomics so concurrent
/// slot-scan reads are race-free; consistency across fields comes from
/// the per-slot seqlock (`seq`). Cache-line aligned so two operations
/// registering on different cores never false-share.
struct alignas(64) ActiveOpSlot {
  std::atomic<uint32_t> seq{0};   ///< seqlock: odd = being written
  std::atomic<uint32_t> kind{0};  ///< OpKind; 0 = free
  std::atomic<uint64_t> id{0};    ///< process-unique operation id
  std::atomic<uint64_t> tid{0};   ///< kernel thread id (gettid)
  std::atomic<int64_t> start_unix_ns{0};
  std::atomic<int64_t> start_steady_ns{0};
  std::atomic<int64_t> start_cpu_ns{0};  ///< owner CLOCK_THREAD_CPUTIME_ID
  std::atomic<uint64_t> start_alloc_bytes{0};
  std::atomic<uint64_t> start_allocs{0};
  /// Owning thread's leaked counter block (resource_tracker.h); stays
  /// dereferenceable after thread exit, so observers read it freely.
  std::atomic<const ThreadCounterBlock*> counters{nullptr};
  std::atomic<char> detail[kActiveOpDetailBytes];  ///< NUL-padded text
};
static_assert(sizeof(ActiveOpSlot) == 192, "black-box wire format");

/// RAII registration. Construction claims a slot (or degrades to
/// unregistered when the table is full); destruction releases it.
/// The guard must be destroyed on the thread that created it.
class ActiveOpGuard {
 public:
  ActiveOpGuard(OpKind kind, std::string_view detail);
  ActiveOpGuard(const ActiveOpGuard&) = delete;
  ActiveOpGuard& operator=(const ActiveOpGuard&) = delete;
  ~ActiveOpGuard();

  /// Process-unique id of this operation (assigned even when the slot
  /// table was full).
  uint64_t id() const { return id_; }
  /// False when the table was full and the operation runs untracked.
  bool registered() const { return slot_ != nullptr; }

 private:
  uint64_t id_ = 0;
  ActiveOpSlot* slot_ = nullptr;
};

/// Consistent copy of one in-flight operation, with live deltas
/// computed at snapshot time.
struct ActiveOpInfo {
  OpKind kind = OpKind::kNone;
  uint64_t id = 0;
  uint64_t tid = 0;
  int64_t start_unix_ns = 0;
  int64_t age_ns = 0;        ///< now - start (wall clock)
  int64_t cpu_ns = 0;        ///< approximate live CPU (see .cc), ≥0
  uint64_t alloc_bytes = 0;  ///< live allocation delta on the op thread
  uint64_t allocs = 0;
  std::string detail;
};

/// Number of currently registered operations (one table scan).
size_t ActiveOpCount();

/// Seqlock-consistent snapshot of every registered operation, oldest
/// first. Live cpu/alloc deltas are computed against "now".
std::vector<ActiveOpInfo> ActiveOpsSnapshot();

/// Lifetime counters: operations that registered / that found the
/// table full.
uint64_t ActiveOpsRegistered();
uint64_t ActiveOpsDropped();

/// /activityz JSON: {"active": n, "registered": ..., "dropped": ...,
///  "ops": [...]}.
std::string RenderActivityz();

/// Compact "kind:count" summary of every registered operation except
/// `exclude_id` (e.g. "query:2 bulkload:1"); empty when alone. Used as
/// slow-query context ("what else was running?").
std::string ActiveOpsSummaryExcluding(uint64_t exclude_id);

/// Raw table address/size for the crash handler's byte copy.
const void* ActiveOpTableAddress();
size_t ActiveOpTableBytes();

/// Re-parse a byte copy of the table (from a black box produced by a
/// crashed process). Slots mid-update at crash time (odd seq) are
/// still reported — a torn detail string beats losing the operation
/// that was on-CPU at the fault. `crash_unix_ns` supplies the "now"
/// for age computation; live cpu/alloc deltas are not recoverable
/// post-mortem and read 0.
std::vector<ActiveOpInfo> ParseActiveOpTable(const void* data, size_t size,
                                             int64_t crash_unix_ns);

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_ACTIVE_OPS_H_
