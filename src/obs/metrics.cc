#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace rdfdb::obs {

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(uint64_t value) {
  // First bound >= value; everything above the last bound lands in the
  // implicit +Inf bucket at index bounds_.size().
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> DefaultLatencyBucketsNs() {
  std::vector<uint64_t> bounds;
  uint64_t bound = 1000;  // 1 µs
  for (int i = 0; i < 11; ++i) {
    bounds.push_back(bound);
    bound *= 4;
  }
  return bounds;  // 1µs 4µs 16µs 64µs 256µs ~1ms ~4ms ~16ms ~67ms ~268ms ~1.07s
}

double QuantileFromBuckets(const std::vector<uint64_t>& bounds,
                           const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (static_cast<double>(cumulative + in_bucket) < rank ||
        in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no upper bound to interpolate toward — clamp to
      // the last finite bound (a floor, not an estimate).
      return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
    }
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = static_cast<double>(bounds[i]);
    const double into = (rank - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
    return lower + (upper - lower) * into;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

double HistogramQuantile(const Histogram& histogram, double q) {
  std::vector<uint64_t> counts(histogram.bounds().size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = histogram.BucketCount(i);
  }
  return QuantileFromBuckets(histogram.bounds(), counts, q);
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<uint64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return it->second.gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry.counter->Value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << entry.gauge->Value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out << name << "_bucket{le=\"" << h.bounds()[i] << "\"} "
              << cumulative << "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << name << "_sum " << h.sum() << "\n";
        out << name << "_count " << h.count() << "\n";
        for (double q : {0.5, 0.95, 0.99}) {
          out << name << "{quantile=\"" << q << "\"} "
              << static_cast<uint64_t>(HistogramQuantile(h, q)) << "\n";
        }
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << name << "\": {";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << entry.counter->Value();
        break;
      case Kind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << entry.gauge->Value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "\"type\": \"histogram\", \"buckets\": [";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          if (i != 0) out << ", ";
          out << "{\"le\": " << h.bounds()[i] << ", \"count\": " << cumulative
              << "}";
        }
        cumulative += h.BucketCount(h.bounds().size());
        if (!h.bounds().empty()) out << ", ";
        out << "{\"le\": \"+Inf\", \"count\": " << cumulative << "}]";
        out << ", \"sum\": " << h.sum() << ", \"count\": " << h.count();
        out << ", \"p50\": " << static_cast<uint64_t>(HistogramQuantile(h, 0.5))
            << ", \"p95\": "
            << static_cast<uint64_t>(HistogramQuantile(h, 0.95))
            << ", \"p99\": "
            << static_cast<uint64_t>(HistogramQuantile(h, 0.99));
        break;
      }
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace rdfdb::obs
