#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace rdfdb::obs {

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(uint64_t value) {
  // First bound >= value; everything above the last bound lands in the
  // implicit +Inf bucket at index bounds_.size().
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> DefaultLatencyBucketsNs() {
  std::vector<uint64_t> bounds;
  uint64_t bound = 1000;  // 1 µs
  for (int i = 0; i < 11; ++i) {
    bounds.push_back(bound);
    bound *= 4;
  }
  return bounds;  // 1µs 4µs 16µs 64µs 256µs ~1ms ~4ms ~16ms ~67ms ~268ms ~1.07s
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  Counter* out = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* out = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

Histogram* MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<uint64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return out;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return it->second.gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return it->second.histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry.counter->Value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << entry.gauge->Value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out << name << "_bucket{le=\"" << h.bounds()[i] << "\"} "
              << cumulative << "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << name << "_sum " << h.sum() << "\n";
        out << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << name << "\": {";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << entry.counter->Value();
        break;
      case Kind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << entry.gauge->Value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "\"type\": \"histogram\", \"buckets\": [";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          if (i != 0) out << ", ";
          out << "{\"le\": " << h.bounds()[i] << ", \"count\": " << cumulative
              << "}";
        }
        cumulative += h.BucketCount(h.bounds().size());
        if (!h.bounds().empty()) out << ", ";
        out << "{\"le\": \"+Inf\", \"count\": " << cumulative << "}]";
        out << ", \"sum\": " << h.sum() << ", \"count\": " << h.count();
        break;
      }
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace rdfdb::obs
