#include "obs/stats_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/active_ops.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/resource_tracker.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"

namespace rdfdb::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Upper bound on the request head this server will buffer while
/// looking for the end of the request line. Anything larger gets a 413
/// instead of unbounded reads.
constexpr size_t kMaxRequestHeadBytes = 16 * 1024;

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

StatsServer::StatsServer(Sources sources)
    : sources_(std::move(sources)),
      started_(std::chrono::steady_clock::now()) {
  // Pre-existing drops are history, not a new degradation: only drops
  // after the server came up flip /healthz.
  if (sources_.events != nullptr) {
    health_seen_drops_ = sources_.events->dropped();
  }
}

StatsServer::~StatsServer() {
  Stop();
}

Status StatsServer::Start(uint16_t port) {
  if (sources_.registry == nullptr) {
    return Status::InvalidArgument("StatsServer requires a MetricsRegistry");
  }
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("StatsServer already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

bool StatsServer::ServeOne() {
  if (listen_fd_ < 0) return false;
  const int conn = ::accept(listen_fd_, nullptr, nullptr);
  if (conn < 0) return false;
  if (stopping_.load(std::memory_order_relaxed)) {
    ::close(conn);
    return false;
  }

  // Per-connection I/O deadlines: the serve loop is single-threaded,
  // so a client that connects and then stalls (or reads its response
  // one byte a week) must time out rather than block every other
  // scraper behind it.
  if (sources_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = sources_.io_timeout_ms / 1000;
    tv.tv_usec = (sources_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  // Read the request head (first line is all we route on), bounded:
  // a request line that never ends within the cap is answered with 413
  // rather than buffered without limit.
  std::string request;
  bool timed_out = false;
  char buf[2048];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < kMaxRequestHeadBytes) {
    const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      timed_out = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (timed_out && line_end == std::string::npos) {
    // Stalled client: drop it without a response and move on.
    ::close(conn);
    return !stopping_.load(std::memory_order_relaxed);
  }

  Response resp;
  resp.content_type = "text/plain; charset=utf-8";
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line_end == std::string::npos &&
      request.size() >= kMaxRequestHeadBytes) {
    resp.status = 413;
    resp.body = "request line too large\n";
  } else if (line.compare(0, 4, "GET ") != 0) {
    resp.status = 405;
    resp.body = "method not allowed\n";
  } else {
    const size_t path_end = line.find(' ', 4);
    // The full target, query string included — Handle splits it, so
    // parameterized endpoints (/profilez?seconds=N) work over sockets.
    std::string target = line.substr(
        4, path_end == std::string::npos ? std::string::npos : path_end - 4);
    if (target.empty() || target[0] != '/') {
      resp.status = 400;
      resp.body = "malformed request line\n";
    } else {
      resp = Handle(target);
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  SendAll(conn, out);
  ::shutdown(conn, SHUT_RDWR);
  ::close(conn);
  return !stopping_.load(std::memory_order_relaxed);
}

void StatsServer::ServeForever() {
  while (ServeOne()) {
  }
}

void StatsServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

StatsServer::Response StatsServer::HandleHealthz() {
  Response resp;
  resp.content_type = "text/plain; charset=utf-8";
  std::string failing;
  if (sources_.events != nullptr) {
    const uint64_t drops = sources_.events->dropped();
    std::lock_guard<std::mutex> lock(health_mu_);
    if (drops > health_seen_drops_) {
      failing += " event_log_drops=" +
                 std::to_string(drops - health_seen_drops_);
    }
    health_seen_drops_ = drops;
  }
  if (sources_.registry != nullptr) {
    if (sources_.unhealthy_epoch_lag > 0) {
      const Gauge* lag =
          sources_.registry->FindGauge("rdfdb_oldest_pinned_epoch_lag");
      if (lag != nullptr && lag->Value() >= sources_.unhealthy_epoch_lag) {
        failing += " epoch_lag=" + std::to_string(lag->Value());
      }
    }
    if (sources_.unhealthy_retention_age_seconds > 0) {
      const Gauge* age =
          sources_.registry->FindGauge("rdfdb_version_retention_age_seconds");
      if (age != nullptr &&
          static_cast<double>(age->Value()) >=
              sources_.unhealthy_retention_age_seconds) {
        failing += " retention_age_seconds=" + std::to_string(age->Value());
      }
    }
  }
  if (sources_.extra_health) {
    const std::string extra = sources_.extra_health();
    if (!extra.empty()) {
      failing += " " + extra;
    }
  }
  if (failing.empty()) {
    resp.body = "ok\n";
  } else {
    resp.status = 503;
    resp.body = "degraded:" + failing + "\n";
  }
  return resp;
}

StatsServer::Response StatsServer::Handle(const std::string& target) {
  std::string path = target;
  std::string query;
  const size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  // Refresh derived gauges (store memory breakdown, retention age)
  // before any endpoint that reads them.
  if (sources_.refresh &&
      (path == "/metrics" || path == "/varz" || path == "/" ||
       path == "/healthz")) {
    sources_.refresh();
  }
  Response resp;
  if (path == "/healthz") {
    return HandleHealthz();
  }
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = sources_.registry->RenderPrometheus();
    return resp;
  }
  if (path == "/profilez") {
    // Blocking by design: sample this process for N seconds and return
    // the flamegraph collapsed stacks. One request per connection, so
    // only the requesting client waits.
    double seconds = 2.0;
    const size_t at = query.find("seconds=");
    if (at != std::string::npos) {
      seconds = std::strtod(query.c_str() + at + 8, nullptr);
      if (seconds <= 0.0) seconds = 2.0;
    }
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = ProfileForSeconds(seconds);
    return resp;
  }
  if (path == "/allocz") {
    resp.content_type = "application/json";
    resp.body = RenderAllocz();
    return resp;
  }
  if (path == "/activityz") {
    resp.content_type = "application/json";
    resp.body = RenderActivityz();
    return resp;
  }
  if (path == "/historyz" && sources_.recorder != nullptr) {
    resp.content_type = "application/json";
    resp.body = sources_.recorder->RenderHistoryJson();
    return resp;
  }
  if (path == "/varz" || path == "/") {
    const double uptime =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started_)
            .count();
    std::string extra;
    if (sources_.events != nullptr) {
      extra += ",\n \"events_appended\": " +
               std::to_string(sources_.events->appended());
      extra += ",\n \"events_dropped\": " +
               std::to_string(sources_.events->dropped());
    }
    if (sources_.slow_queries != nullptr) {
      extra += ",\n \"slow_queries_captured\": " +
               std::to_string(sources_.slow_queries->captured());
    }
    if (sources_.timeline != nullptr) {
      extra += ",\n \"timeline_spans\": " +
               std::to_string(sources_.timeline->size());
    }
    const MetricsSnapshot cur = TakeMetricsSnapshot(*sources_.registry);
    MetricsSnapshot prev;
    {
      std::lock_guard<std::mutex> lock(varz_mu_);
      prev = have_prev_ ? prev_snapshot_ : cur;
      prev_snapshot_ = cur;
      have_prev_ = true;
    }
    resp.content_type = "application/json";
    resp.body = RenderVarzJson(*sources_.registry, prev, cur, uptime, extra);
    return resp;
  }
  if (path == "/slow" && sources_.slow_queries != nullptr) {
    resp.content_type = "application/json";
    resp.body = sources_.slow_queries->ToJson();
    return resp;
  }
  if (path == "/timeline" && sources_.timeline != nullptr) {
    resp.content_type = "application/json";
    resp.body = sources_.timeline->ToChromeTraceJson();
    return resp;
  }
  resp.status = 404;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = "not found: " + path +
              "\nendpoints: /metrics /varz /healthz /slow /timeline "
              "/profilez /allocz /activityz /historyz\n";
  return resp;
}

}  // namespace rdfdb::obs
