#include "obs/event_log.h"

#include <fstream>

#include "obs/json.h"

namespace rdfdb::obs {

EventLog::EventLog(Options options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      ring_(options_.capacity == 0 ? 1 : options_.capacity) {}

Result<std::unique_ptr<EventLog>> EventLog::Open(Options options) {
  std::unique_ptr<EventLog> log(new EventLog(std::move(options)));
  if (log->options_.sink != nullptr) {
    log->out_ = log->options_.sink;
  } else {
    log->file_ = std::make_unique<std::ofstream>(log->options_.path,
                                                 std::ios::app);
    if (!log->file_->is_open()) {
      return Status::IOError("cannot open event log sink " +
                             log->options_.path);
    }
    log->out_ = log->file_.get();
  }
  log->drainer_ = std::thread([raw = log.get()] { raw->DrainLoop(); });
  return log;
}

EventLog::~EventLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
}

int64_t EventLog::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLog::Append(const char* category, const char* name,
                      std::vector<EventField> fields) {
  Event event;
  event.ts_us = NowUs();
  event.category = category;
  event.name = name;
  event.fields = std::move(fields);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == ring_.size()) {
      // Overload: drop the *new* event so the buffered prefix stays an
      // ordered, gap-free record of what led up to the overload.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      appended_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    event.seq = appended_.fetch_add(1, std::memory_order_relaxed);
    ring_[(head_ + count_) % ring_.size()] = std::move(event);
    ++count_;
  }
  cv_.notify_one();
}

void EventLog::Flush() {
  const uint64_t target = appended_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.notify_all();
  flush_cv_.wait(lock, [&] {
    return written_.load(std::memory_order_relaxed) +
               dropped_.load(std::memory_order_relaxed) >=
           target;
  });
}

std::string EventLog::RenderJsonl(const Event& event) {
  std::string line = "{\"ts_us\":" + std::to_string(event.ts_us) +
                     ",\"seq\":" + std::to_string(event.seq) + ",\"cat\":";
  AppendJsonString(event.category, &line);
  line += ",\"event\":";
  AppendJsonString(event.name, &line);
  for (const EventField& field : event.fields) {
    line += ",";
    AppendJsonString(field.key, &line);
    line += ":";
    if (field.is_num) {
      line += std::to_string(field.num);
    } else {
      AppendJsonString(field.str, &line);
    }
  }
  line += "}\n";
  return line;
}

void EventLog::DrainLoop() {
  std::vector<Event> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return count_ > 0 || stop_; });
      if (count_ == 0 && stop_) return;
      // Claim the whole buffered run so producers regain ring space in
      // one motion and the sink sees large sequential writes.
      batch.clear();
      batch.reserve(count_);
      while (count_ > 0) {
        batch.push_back(std::move(ring_[head_]));
        head_ = (head_ + 1) % ring_.size();
        --count_;
      }
    }
    std::string chunk;
    std::vector<std::string> lines;
    lines.reserve(batch.size());
    for (const Event& event : batch) {
      lines.push_back(RenderJsonl(event));
      chunk += lines.back();
    }
    out_->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    out_->flush();
    if (options_.retain_tail > 0) {
      std::lock_guard<std::mutex> lock(tail_mu_);
      for (std::string& line : lines) tail_.push_back(std::move(line));
      while (tail_.size() > options_.retain_tail) tail_.pop_front();
    }
    {
      // Publish under mu_: Flush() checks the counter with mu_ held, so
      // the lock both prevents a lost wakeup (increment between a
      // waiter's predicate check and its sleep) and orders the sink
      // writes above before any Flush() caller that sees the new count
      // reads the sink.
      std::lock_guard<std::mutex> lock(mu_);
      written_.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    flush_cv_.notify_all();
  }
}

std::string EventLog::TailJsonl() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  std::string out;
  for (const std::string& line : tail_) out += line;
  return out;
}

void LogErrorEvent(EventLog* log, const char* where, const Status& status) {
  if (log == nullptr || status.ok()) return;
  log->Append("error", where,
              {EventField::Str("status", status.ToString())});
}

}  // namespace rdfdb::obs
