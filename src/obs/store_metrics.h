// Pre-registered instrument handles for one RdfStore.
//
// RdfStore owns a MetricsRegistry and one StoreMetrics; the storage
// layers (ValueStore, LinkStore, bulk load, redo log, match) hold a
// raw StoreMetrics pointer so the steady-state write path is a relaxed
// atomic increment — no name lookup, no registry mutex. Components
// constructed standalone (unit tests) leave the pointer null and all
// instrumentation sites degrade to a single predictable branch.

#ifndef RDFDB_OBS_STORE_METRICS_H_
#define RDFDB_OBS_STORE_METRICS_H_

#include "obs/metrics.h"

namespace rdfdb::obs {

struct StoreMetrics {
  /// Registers every instrument in `registry` (idempotent per registry,
  /// since re-registration returns the existing instrument).
  explicit StoreMetrics(MetricsRegistry* registry);

  MetricsRegistry* registry = nullptr;

  // rdf_value$ interning.
  Counter* value_lookups;        ///< dictionary probes (incl. blank nodes)
  Counter* value_lookup_hits;    ///< probes that found an existing id
  Counter* value_inserts;        ///< new rdf_value$/rdf_blank_node$ rows
  Counter* value_batch_terms;    ///< terms presented to LookupOrInsertBatch
  Counter* value_intern_cache_hits;  ///< batch terms resolved by InternCache

  // rdf_link$ triples.
  Counter* link_inserts;       ///< new rdf_link$ rows
  Counter* link_duplicates;    ///< inserts folded into an existing row
  Counter* link_deletes;       ///< rows removed (or cost-decremented)
  Counter* link_rows_scanned;  ///< rows visited by Match/ScanModel

  // Reification (DBUri-driven).
  Counter* reif_checks;             ///< IsLinkReified probes
  Counter* reif_dburi_resolutions;  ///< DBUri strings parsed back to link ids

  // SDO_RDF_MATCH.
  Counter* queries;        ///< SdoRdfMatch calls that reached execution
  Counter* query_rows;     ///< result rows returned across all queries
  Histogram* query_ns;     ///< end-to-end SdoRdfMatch latency
  Counter* query_cpu_ns;      ///< CPU ns attributed to queries (all threads)
  Counter* query_alloc_bytes; ///< heap bytes allocated inside queries

  // Inference.
  Counter* inference_rounds;   ///< fixpoint rounds across all entailments
  Counter* inference_derived;  ///< distinct inferred triples retained

  // Bulk load pipeline.
  Counter* bulkload_statements;  ///< statements consumed (incl. rejects)
  Counter* bulkload_chunks;      ///< chunks through the ordered pipeline
  Gauge* bulkload_queue_depth;   ///< high-water produced-minus-consumed
  Histogram* bulkload_parse_ns;   ///< per-chunk parse/prepare time
  Histogram* bulkload_intern_ns;  ///< per-chunk batched intern time
  Histogram* bulkload_insert_ns;  ///< per-chunk link-insert time

  // Persistence.
  Counter* snapshot_saves;
  Counter* snapshot_loads;
  Histogram* snapshot_save_ns;
  Histogram* snapshot_load_ns;
  Counter* replay_records;   ///< redo-log records applied
  Histogram* replay_ns;      ///< whole-log replay time
  Counter* replay_torn_tails;    ///< torn final records dropped on replay
  Counter* replay_stale_skipped; ///< pre-checkpoint records skipped by seq
  Counter* recovery_opens;       ///< LoggedRdfStore::Open recoveries

  // Snapshot-store version publishing (epoch-based read path).
  Counter* versions_published;   ///< StoreVersions swapped in
  Histogram* publish_ns;         ///< build + swap + sweep latency
  Gauge* retired_versions;       ///< retired-but-not-yet-freed versions
  Gauge* epoch_lag;              ///< current epoch minus oldest pinned
  Gauge* retention_age_seconds;  ///< age of the oldest retired version

  // Store-wide memory accounting (RdfStore::UpdateMemoryGauges /
  // SnapshotRdfStore::UpdateMemoryGauges refresh these on demand — they
  // are gauges of approximate heap footprint, not hot-path counters).
  Gauge* mem_value_store_bytes;     ///< rdf_value$/rdf_blank_node$ + indexes
  Gauge* mem_link_table_bytes;      ///< rdf_link$/rdf_node$ + indexes
  Gauge* mem_quad_cache_bytes;      ///< per-model id-native quad caches
  Gauge* mem_term_dict_bytes;       ///< lock-free term dictionary spine
  Gauge* mem_retired_version_bytes; ///< exclusive bytes held by retired versions
  Gauge* mem_tracked_heap_bytes;    ///< process-wide live heap (allocator hooks)

  // Active-operation registry (obs/active_ops.h). Refreshed by
  // UpdateMemoryGauges so the flight recorder's registry snapshots and
  // /metrics scrapes both carry the in-flight count.
  Gauge* active_operations;  ///< currently registered operations
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_STORE_METRICS_H_
