// Slow-query capture: a bounded ring of the most recent SDO_RDF_MATCH
// executions whose end-to-end latency crossed a configurable threshold,
// each retaining the full QueryTrace (plan order, per-pattern rows,
// per-worker parallel shape, value-lookup traffic, stage wall times).
//
// SdoRdfMatch consults the store's SlowQueryLog pointer: when attached
// it traces into a stack-local QueryTrace (unless the caller already
// supplied one) and, only if the query proves slow, copies the trace
// into the ring — a fast query pays the tracing counters but no
// allocation, lock, or copy at the capture site, and a store without a
// log attached pays a single branch (see DESIGN.md §10).

#ifndef RDFDB_OBS_SLOW_QUERY_LOG_H_
#define RDFDB_OBS_SLOW_QUERY_LOG_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rdfdb::obs {

class SlowQueryLog {
 public:
  struct Entry {
    uint64_t id = 0;      ///< capture sequence number (monotonic)
    int64_t ts_us = 0;    ///< capture time, µs since the log's creation
    std::string query;    ///< pattern text as submitted
    std::string models;   ///< comma-joined model list
    size_t rows = 0;      ///< result rows returned
    int64_t total_ns = 0; ///< end-to-end latency
    QueryTrace trace;     ///< the full EXPLAIN ANALYZE payload
    /// What else was in flight when the query finished: a compact
    /// "kind:count" summary from the active-operation registry (empty
    /// when the query ran alone). "Was the store busy?" is the first
    /// question a slow-query investigation asks.
    std::string concurrent;
    size_t concurrent_ops = 0;  ///< total concurrent operations
  };

  /// Retains the `capacity` most recent queries at or over
  /// `threshold_ns` end-to-end.
  SlowQueryLog(int64_t threshold_ns, size_t capacity = 32);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  int64_t threshold_ns() const { return threshold_ns_; }

  /// Record one slow query (called only after the threshold test, so
  /// the lock is never taken for fast queries). Evicts the oldest entry
  /// when full. Thread-safe.
  void Record(Entry entry);

  /// Snapshot of the retained entries, oldest first. Thread-safe.
  std::vector<Entry> Entries() const;

  /// Queries that crossed the threshold since construction (>= the
  /// retained count once the ring wraps).
  uint64_t captured() const;

  /// Human-readable rendering: one header line plus the trace per entry.
  std::string ToString() const;

  /// JSON array of entries (query, models, rows, latency and stage
  /// times — not the per-pattern detail) for the stats server.
  std::string ToJson() const;

 private:
  const int64_t threshold_ns_;
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // guarded by mu_; oldest at front
  uint64_t captured_ = 0;      // guarded by mu_
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_SLOW_QUERY_LOG_H_
