// Embedded stats endpoint: a deliberately small, blocking TCP HTTP/1.1
// server bound to 127.0.0.1 that exposes the observability surfaces of
// one store:
//
//   GET /metrics   Prometheus text exposition (scrape target)
//   GET /varz      JSON: uptime, per-interval counter rates, full
//                  registry dump (+ optional extra members)
//   GET /healthz   "ok\n", or 503 "degraded: <signals>\n" when the
//                  event log dropped entries since the last check, the
//                  oldest pinned epoch lags too far behind, or a
//                  retired store version has been unreclaimable for too
//                  long (thresholds in Sources)
//   GET /slow      slow-query log, JSON (404 when not attached)
//   GET /timeline  Chrome trace-event JSON (404 when not attached)
//   GET /profilez  ?seconds=N (default 2): block, sample the process at
//                  100 Hz, return flamegraph collapsed stacks
//   GET /allocz    JSON: live heap bytes + per-scope-label allocation
//                  and CPU attribution (obs/resource_tracker.h)
//   GET /activityz JSON: the active-operation table — every in-flight
//                  query/load/checkpoint with live cpu/alloc deltas
//                  (obs/active_ops.h)
//   GET /historyz  JSON: the flight recorder's metric history ring
//                  (404 when no recorder is attached)
//
// One request per connection, response closes the socket — the server
// is an operator peephole, not a web framework. Accepted connections
// carry SO_RCVTIMEO/SO_SNDTIMEO (Sources::io_timeout_ms) so a stalled
// client times out instead of wedging the loop. `Handle()` is public so
// tests (and the in-process tools) can exercise routing without
// sockets; it accepts the raw request target, query string included.

#ifndef RDFDB_OBS_STATS_SERVER_H_
#define RDFDB_OBS_STATS_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/metrics_snapshot.h"

namespace rdfdb::obs {

class SlowQueryLog;
class Timeline;
class EventLog;
class FlightRecorder;

class StatsServer {
 public:
  /// Data sources; only `registry` is required. All pointers are
  /// non-owning and must outlive the server.
  struct Sources {
    const MetricsRegistry* registry = nullptr;
    const SlowQueryLog* slow_queries = nullptr;
    const Timeline* timeline = nullptr;
    const EventLog* events = nullptr;
    /// Optional: called before any endpoint that renders gauges
    /// (/metrics, /varz, /healthz) so the owner can refresh
    /// derived/point-in-time values (e.g. the store's memory gauges)
    /// without the server depending on store types.
    std::function<void()> refresh;
    /// /healthz degradation thresholds (<= 0 disables the check).
    double unhealthy_retention_age_seconds = 60.0;
    int64_t unhealthy_epoch_lag = 1024;
    /// Optional: extra /healthz signals from the owner (e.g. the query
    /// front-end's admission-queue depth and shed rate). Returns "" when
    /// healthy; any non-empty string is appended to the degraded
    /// verdict and flips the response to 503.
    std::function<std::string()> extra_health;
    /// Optional flight recorder backing /historyz (404 when absent).
    const FlightRecorder* recorder = nullptr;
    /// Per-connection SO_RCVTIMEO/SO_SNDTIMEO on accepted sockets, so
    /// a stalled client can't wedge the single-threaded scrape loop
    /// (<= 0 disables — tests only).
    int io_timeout_ms = 5000;
  };

  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  explicit StatsServer(Sources sources);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral; see port()).
  Status Start(uint16_t port);

  /// Port actually bound (after Start); 0 before.
  uint16_t port() const { return port_; }

  /// Accept and serve exactly one connection. Returns false when the
  /// listener was shut down (Stop) or accept failed.
  bool ServeOne();

  /// ServeOne until Stop().
  void ServeForever();

  /// Shut down the listener; unblocks a pending accept.
  void Stop();

  /// Route a request target (path + optional ?query) to a response (no
  /// sockets involved).
  Response Handle(const std::string& target);

 private:
  /// "ok" / "degraded: <signals>" verdict; see the header comment.
  Response HandleHealthz();

  Sources sources_;
  const std::chrono::steady_clock::time_point started_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex varz_mu_;               ///< guards the /varz interval state
  MetricsSnapshot prev_snapshot_;    ///< previous /varz scrape
  bool have_prev_ = false;

  std::mutex health_mu_;             ///< guards the drop watermark
  uint64_t health_seen_drops_ = 0;   ///< event-log drops at last /healthz
};

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_STATS_SERVER_H_
