#include "obs/flight_recorder.h"

#include <time.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "obs/active_ops.h"
#include "obs/profiler.h"

namespace rdfdb::obs {

namespace {

int64_t UnixNowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Union of series names across the ring (a series that appears
/// mid-ring still gets a full-length row, padded with missing points).
std::set<std::string> SeriesNames(const std::deque<HistoryPoint>& ring) {
  std::set<std::string> names;
  for (const HistoryPoint& point : ring) {
    for (const auto& [name, value] : point.series) names.insert(name);
  }
  return names;
}

}  // namespace

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<FlightRecorder>> FlightRecorder::Start(
    Options options) {
  if (options.registry == nullptr) {
    return Status::InvalidArgument("FlightRecorder needs a registry");
  }
  if (options.sample_interval_ms <= 0) {
    return Status::InvalidArgument("sample_interval_ms must be positive");
  }
  if (options.history_capacity == 0) {
    return Status::InvalidArgument("history_capacity must be positive");
  }
  auto recorder =
      std::unique_ptr<FlightRecorder>(new FlightRecorder(std::move(options)));
  if (!recorder->options_.black_box_path.empty()) {
    RDFDB_ASSIGN_OR_RETURN(
        recorder->black_box_,
        BlackBox::OpenOrCreate(recorder->options_.black_box_path));
  }
  recorder->samples_metric_ = recorder->options_.registry->RegisterCounter(
      "rdfdb_flight_samples_total",
      "History points captured by the flight recorder");
  // Baseline snapshot: the first real sample computes rates against it.
  recorder->prev_ = TakeMetricsSnapshot(*recorder->options_.registry);
  if (recorder->options_.events != nullptr) {
    recorder->prev_events_appended_ = recorder->options_.events->appended();
    recorder->prev_events_dropped_ = recorder->options_.events->dropped();
  }
  recorder->sampler_ = std::thread(&FlightRecorder::SamplerLoop,
                                   recorder.get());
  return recorder;
}

FlightRecorder::~FlightRecorder() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void FlightRecorder::SamplerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.sample_interval_ms),
            [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void FlightRecorder::SampleNow() {
  std::lock_guard<std::mutex> lock(sample_mu_);
  SampleLocked();
}

void FlightRecorder::SampleLocked() {
  if (options_.refresh) options_.refresh();
  MetricsSnapshot cur = TakeMetricsSnapshot(*options_.registry);

  HistoryPoint point;
  point.unix_ms = UnixNowMs();
  double interval_s =
      static_cast<double>(cur.ts_ns - prev_.ts_ns) / 1e9;
  if (interval_s <= 0) {
    interval_s = static_cast<double>(options_.sample_interval_ms) / 1e3;
  }
  point.interval_s = interval_s;

  for (const auto& [name, sample] : cur.samples) {
    switch (sample.kind) {
      case MetricsRegistry::Kind::kCounter:
        point.series[name + ".rate"] = CounterRate(prev_, cur, name);
        break;
      case MetricsRegistry::Kind::kGauge:
        point.series[name] = static_cast<double>(sample.value);
        break;
      case MetricsRegistry::Kind::kHistogram:
        point.series[name + ".p50"] = IntervalQuantile(prev_, cur, name, 0.5);
        point.series[name + ".p95"] =
            IntervalQuantile(prev_, cur, name, 0.95);
        point.series[name + ".p99"] =
            IntervalQuantile(prev_, cur, name, 0.99);
        point.series[name + ".rate"] =
            static_cast<double>(IntervalCount(prev_, cur, name)) / interval_s;
        break;
    }
  }

  // Synthetic series: sources outside the registry that the flight
  // recorder is the one consumer of.
  point.series["rdfdb_active_ops"] =
      static_cast<double>(ActiveOpCount());
  if (options_.events != nullptr) {
    const uint64_t appended = options_.events->appended();
    const uint64_t dropped = options_.events->dropped();
    point.series["rdfdb_event_log_appended_total.rate"] =
        static_cast<double>(appended - prev_events_appended_) / interval_s;
    point.series["rdfdb_event_log_dropped_total.rate"] =
        static_cast<double>(dropped - prev_events_dropped_) / interval_s;
    prev_events_appended_ = appended;
    prev_events_dropped_ = dropped;
  }

  prev_ = std::move(cur);
  samples_metric_->Inc();
  samples_.fetch_add(1, std::memory_order_relaxed);
  ++ticks_;

  std::string history_text;
  {
    std::lock_guard<std::mutex> ring_lock(ring_mu_);
    ring_.push_back(std::move(point));
    while (ring_.size() > options_.history_capacity) ring_.pop_front();
    if (black_box_ != nullptr) history_text = RenderHistoryTextLocked();
  }

  if (black_box_ != nullptr) {
    black_box_->WriteHistory(history_text);
    if (options_.events != nullptr) {
      black_box_->WriteEventsTail(options_.events->TailJsonl());
    }
    if (options_.profile_every != 0 &&
        ticks_ % options_.profile_every == 1 && ProfilerRunning()) {
      black_box_->WriteProfile(CollapsedProfile());
    }
    black_box_->Sync();
  }
}

std::vector<HistoryPoint> FlightRecorder::History() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return std::vector<HistoryPoint>(ring_.begin(), ring_.end());
}

std::string FlightRecorder::RenderHistoryJson() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  std::string out = "{\n \"interval_ms\": ";
  out += std::to_string(options_.sample_interval_ms);
  out += ",\n \"points\": " + std::to_string(ring_.size());
  out += ",\n \"t_unix_ms\": [";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(ring_[i].unix_ms);
  }
  out += "],\n \"series\": {";
  const std::set<std::string> names = SeriesNames(ring_);
  bool first_series = true;
  for (const std::string& name : names) {
    out += first_series ? "\n  \"" : ",\n  \"";
    first_series = false;
    out += name;
    out += "\": [";
    for (size_t i = 0; i < ring_.size(); ++i) {
      if (i != 0) out += ", ";
      const auto it = ring_[i].series.find(name);
      out += it == ring_[i].series.end() ? "null" : FormatValue(it->second);
    }
    out += "]";
  }
  out += "\n }\n}\n";
  return out;
}

std::string FlightRecorder::RenderHistoryTextLocked() const {
  std::string out = "flight_history v1\ninterval_ms ";
  out += std::to_string(options_.sample_interval_ms);
  out += "\npoints " + std::to_string(ring_.size());
  out += "\nt_unix_ms";
  for (const HistoryPoint& point : ring_) {
    out += ' ';
    out += std::to_string(point.unix_ms);
  }
  out += '\n';
  for (const std::string& name : SeriesNames(ring_)) {
    out += name;
    for (const HistoryPoint& point : ring_) {
      out += ' ';
      const auto it = point.series.find(name);
      out += it == point.series.end()
                 ? "-"
                 : FormatValue(it->second);
    }
    out += '\n';
  }
  return out;
}

std::string FlightRecorder::RenderHistoryText() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return RenderHistoryTextLocked();
}

Result<ParsedHistory> ParseHistoryText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "flight_history v1") {
    return Status::Corruption("history: bad header line");
  }
  ParsedHistory out;
  size_t points = 0;
  {
    std::string key;
    if (!std::getline(in, line)) {
      return Status::Corruption("history: missing interval_ms");
    }
    std::istringstream fields(line);
    if (!(fields >> key >> out.interval_ms) || key != "interval_ms") {
      return Status::Corruption("history: bad interval_ms line");
    }
    if (!std::getline(in, line)) {
      return Status::Corruption("history: missing points");
    }
    std::istringstream points_fields(line);
    if (!(points_fields >> key >> points) || key != "points") {
      return Status::Corruption("history: bad points line");
    }
    if (!std::getline(in, line)) {
      return Status::Corruption("history: missing t_unix_ms");
    }
    std::istringstream ts_fields(line);
    if (!(ts_fields >> key) || key != "t_unix_ms") {
      return Status::Corruption("history: bad t_unix_ms line");
    }
    int64_t t = 0;
    while (ts_fields >> t) out.t_unix_ms.push_back(t);
    if (out.t_unix_ms.size() != points) {
      return Status::Corruption("history: timestamp count mismatch");
    }
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    std::vector<double> values;
    values.reserve(points);
    std::string token;
    while (fields >> token) {
      if (token == "-") {
        values.push_back(std::nan(""));
      } else {
        try {
          values.push_back(std::stod(token));
        } catch (...) {
          return Status::Corruption("history: bad value in series " + name);
        }
      }
    }
    if (values.size() != points) {
      return Status::Corruption("history: value count mismatch in series " +
                                name);
    }
    out.series[name] = std::move(values);
  }
  return out;
}

std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double lo = 0, hi = 0;
  bool seeded = false;
  for (const double v : values) {
    if (std::isnan(v)) continue;
    if (!seeded) {
      lo = hi = v;
      seeded = true;
    } else {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  std::string out;
  for (const double v : values) {
    if (std::isnan(v)) {
      out += ' ';
      continue;
    }
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
      if (level < 0) level = 0;
      if (level > 7) level = 7;
    }
    out += kLevels[level];
  }
  return out;
}

}  // namespace rdfdb::obs
