#include "obs/metrics_snapshot.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace rdfdb::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const MetricsSnapshot::Sample* Find(const MetricsSnapshot& snap,
                                    const std::string& name) {
  auto it = snap.samples.find(name);
  return it == snap.samples.end() ? nullptr : &it->second;
}

double IntervalSeconds(const MetricsSnapshot& prev,
                       const MetricsSnapshot& cur) {
  return static_cast<double>(cur.ts_ns - prev.ts_ns) / 1e9;
}

/// Per-interval disjoint bucket deltas; empty when shapes mismatch.
std::vector<uint64_t> BucketDeltas(const MetricsSnapshot::Sample* prev,
                                   const MetricsSnapshot::Sample& cur) {
  std::vector<uint64_t> deltas = cur.buckets;
  if (prev != nullptr && prev->buckets.size() == deltas.size()) {
    for (size_t i = 0; i < deltas.size(); ++i) {
      deltas[i] -= prev->buckets[i];
    }
  }
  return deltas;
}

}  // namespace

int64_t MetricsSnapshot::Counter(const std::string& name) const {
  const Sample* s = Find(*this, name);
  return (s != nullptr && s->kind == MetricsRegistry::Kind::kCounter)
             ? s->value
             : 0;
}

int64_t MetricsSnapshot::Gauge(const std::string& name) const {
  const Sample* s = Find(*this, name);
  return (s != nullptr && s->kind == MetricsRegistry::Kind::kGauge) ? s->value
                                                                    : 0;
}

MetricsSnapshot TakeMetricsSnapshot(const MetricsRegistry& registry) {
  MetricsSnapshot snap;
  snap.ts_ns = NowNs();
  registry.ForEach([&snap](const MetricsRegistry::InstrumentView& view) {
    MetricsSnapshot::Sample sample;
    sample.kind = view.kind;
    switch (view.kind) {
      case MetricsRegistry::Kind::kCounter:
        sample.value = static_cast<int64_t>(view.counter->Value());
        break;
      case MetricsRegistry::Kind::kGauge:
        sample.value = view.gauge->Value();
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const Histogram& h = *view.histogram;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.bounds = h.bounds();
        sample.buckets.resize(h.bounds().size() + 1);
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          sample.buckets[i] = h.BucketCount(i);
        }
        break;
      }
    }
    snap.samples.emplace(*view.name, std::move(sample));
  });
  return snap;
}

double CounterRate(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                   const std::string& name) {
  const double seconds = IntervalSeconds(prev, cur);
  if (seconds <= 0.0) return 0.0;
  const int64_t delta = cur.Counter(name) - prev.Counter(name);
  return delta <= 0 ? 0.0 : static_cast<double>(delta) / seconds;
}

double IntervalQuantile(const MetricsSnapshot& prev,
                        const MetricsSnapshot& cur, const std::string& name,
                        double q) {
  const MetricsSnapshot::Sample* c = Find(cur, name);
  if (c == nullptr || c->kind != MetricsRegistry::Kind::kHistogram) return 0.0;
  return QuantileFromBuckets(c->bounds, BucketDeltas(Find(prev, name), *c), q);
}

uint64_t IntervalCount(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                       const std::string& name) {
  const MetricsSnapshot::Sample* c = Find(cur, name);
  if (c == nullptr || c->kind != MetricsRegistry::Kind::kHistogram) return 0;
  const MetricsSnapshot::Sample* p = Find(prev, name);
  const uint64_t before = p == nullptr ? 0 : p->count;
  return c->count >= before ? c->count - before : 0;
}

std::string RenderIntervalText(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur) {
  const double seconds = IntervalSeconds(prev, cur);
  std::ostringstream out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "interval %.2fs\n",
                seconds > 0.0 ? seconds : 0.0);
  out << buf;
  for (const auto& [name, sample] : cur.samples) {
    switch (sample.kind) {
      case MetricsRegistry::Kind::kCounter: {
        const int64_t delta = sample.value - prev.Counter(name);
        if (delta <= 0) break;
        std::snprintf(buf, sizeof(buf), "  %-44s +%lld (%.1f/s)\n",
                      name.c_str(), static_cast<long long>(delta),
                      seconds > 0.0 ? static_cast<double>(delta) / seconds
                                    : 0.0);
        out << buf;
        break;
      }
      case MetricsRegistry::Kind::kGauge:
        if (sample.value == 0) break;
        std::snprintf(buf, sizeof(buf), "  %-44s %lld\n", name.c_str(),
                      static_cast<long long>(sample.value));
        out << buf;
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const uint64_t n = IntervalCount(prev, cur, name);
        if (n == 0) break;
        std::snprintf(
            buf, sizeof(buf),
            "  %-44s n=%llu p50=%.0f p95=%.0f p99=%.0f\n", name.c_str(),
            static_cast<unsigned long long>(n),
            IntervalQuantile(prev, cur, name, 0.5),
            IntervalQuantile(prev, cur, name, 0.95),
            IntervalQuantile(prev, cur, name, 0.99));
        out << buf;
        break;
      }
    }
  }
  return out.str();
}

std::string RenderVarzJson(const MetricsRegistry& registry,
                           const MetricsSnapshot& prev,
                           const MetricsSnapshot& cur, double uptime_seconds,
                           const std::string& extra_json) {
  std::ostringstream out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"uptime_seconds\": %.3f",
                uptime_seconds);
  out << buf;
  std::snprintf(buf, sizeof(buf), ",\n \"interval_seconds\": %.3f",
                IntervalSeconds(prev, cur));
  out << buf;
  out << ",\n \"rates\": {";
  bool first = true;
  for (const auto& [name, sample] : cur.samples) {
    if (sample.kind != MetricsRegistry::Kind::kCounter) continue;
    const double rate = CounterRate(prev, cur, name);
    if (rate <= 0.0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n  " << JsonString(name) << ": ";
    std::snprintf(buf, sizeof(buf), "%.2f", rate);
    out << buf;
  }
  out << (first ? "}" : "\n }");
  if (!extra_json.empty()) out << extra_json;
  out << ",\n \"metrics\": " << registry.RenderJson() << "}\n";
  return out.str();
}

}  // namespace rdfdb::obs
