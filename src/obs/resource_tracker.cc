#include "obs/resource_tracker.h"

#include <malloc.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

#include "obs/json.h"

namespace rdfdb::obs {

namespace {

// Process-wide ledger. Constant-initialized so the hooks are safe from
// the very first allocation.
std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_frees{0};

// Per-thread monotonic totals, kept in leaked pool blocks so any
// thread can read any other thread's totals at any time (the
// active-operation registry renders live per-op allocation deltas from
// these pointers — see resource_tracker.h). Only the owning thread
// writes, with relaxed load+store pairs (no RMW), so the hot path costs
// the same as the plain thread-local adds it replaces; the one branch
// (first-use block acquisition) is perfectly predicted afterwards. The
// pool itself is constant-initialized: the hooks are safe from the very
// first allocation, including allocations during static init.
constexpr size_t kThreadBlockPool = 4096;
ThreadCounterBlock g_thread_blocks[kThreadBlockPool];
ThreadCounterBlock g_overflow_block;  // shared past pool exhaustion
std::atomic<size_t> g_thread_blocks_used{0};

thread_local ThreadCounterBlock* tl_block = nullptr;

ThreadCounterBlock* AcquireThreadBlock() {
  const size_t i = g_thread_blocks_used.fetch_add(1,
                                                  std::memory_order_relaxed);
  return i < kThreadBlockPool ? &g_thread_blocks[i] : &g_overflow_block;
}

inline ThreadCounterBlock& ThreadBlock() {
  ThreadCounterBlock* block = tl_block;
  if (block == nullptr) block = tl_block = AcquireThreadBlock();
  return *block;
}

inline void NoteAlloc(void* ptr) {
  const size_t usable = ::malloc_usable_size(ptr);
  g_live_bytes.fetch_add(usable, std::memory_order_relaxed);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  ThreadCounterBlock& block = ThreadBlock();
  // Owner-only writes: load+store instead of fetch_add keeps this a
  // plain add on x86 (threads sharing the overflow block may lose
  // updates — approximate attribution there, by design).
  block.bytes.store(block.bytes.load(std::memory_order_relaxed) + usable,
                    std::memory_order_relaxed);
  block.count.store(block.count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
}

inline void NoteFree(void* ptr) {
  if (ptr == nullptr) return;
  const size_t usable = ::malloc_usable_size(ptr);
  g_live_bytes.fetch_sub(usable, std::memory_order_relaxed);
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

void* AllocOrThrow(size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = std::malloc(size);
    if (ptr != nullptr) {
      NoteAlloc(ptr);
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* AllocAlignedOrThrow(size_t size, size_t alignment) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = nullptr;
    if (::posix_memalign(&ptr, std::max(alignment, sizeof(void*)), size) ==
        0) {
      NoteAlloc(ptr);
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void Release(void* ptr) {
  NoteFree(ptr);
  std::free(ptr);
}

// ---- Scope registry -------------------------------------------------------

struct Registry {
  std::mutex mu;
  // std::map keeps /allocz output deterministic for equal byte counts.
  std::map<std::string, ScopeStats> by_label;
};

Registry& GetRegistry() {
  // Leaked: scopes may close during static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

uint64_t TrackedHeapBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
uint64_t TrackedAllocations() {
  return g_allocations.load(std::memory_order_relaxed);
}
uint64_t TrackedFrees() { return g_frees.load(std::memory_order_relaxed); }

uint64_t ThreadAllocatedBytes() {
  return ThreadBlock().bytes.load(std::memory_order_relaxed);
}
uint64_t ThreadAllocationCount() {
  return ThreadBlock().count.load(std::memory_order_relaxed);
}

const ThreadCounterBlock* ThisThreadCounters() { return &ThreadBlock(); }

int64_t ThreadCpuNanos() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

ResourceScope::ResourceScope(const char* label, ResourceUsage* sink)
    : label_(label),
      sink_(sink),
      start_bytes_(ThreadAllocatedBytes()),
      start_allocs_(ThreadAllocationCount()),
      start_cpu_ns_(ThreadCpuNanos()) {}

ResourceUsage ResourceScope::Usage() const {
  ResourceUsage usage;
  usage.cpu_ns = ThreadCpuNanos() - start_cpu_ns_;
  usage.bytes_allocated = ThreadAllocatedBytes() - start_bytes_;
  usage.allocations = ThreadAllocationCount() - start_allocs_;
  return usage;
}

ResourceScope::~ResourceScope() {
  const ResourceUsage usage = Usage();
  if (sink_ != nullptr) *sink_ += usage;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ScopeStats& stats = registry.by_label[label_];
  if (stats.label.empty()) stats.label = label_;
  ++stats.scopes;
  stats.bytes_allocated += usage.bytes_allocated;
  stats.allocations += usage.allocations;
  stats.cpu_ns += usage.cpu_ns;
}

std::vector<ScopeStats> ScopeStatsSnapshot() {
  Registry& registry = GetRegistry();
  std::vector<ScopeStats> out;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    out.reserve(registry.by_label.size());
    for (const auto& [label, stats] : registry.by_label) out.push_back(stats);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ScopeStats& a, const ScopeStats& b) {
                     return a.bytes_allocated > b.bytes_allocated;
                   });
  return out;
}

void ResetScopeStats() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.by_label.clear();
}

std::string RenderAllocz(size_t max_scopes) {
  std::vector<ScopeStats> scopes = ScopeStatsSnapshot();
  if (scopes.size() > max_scopes) scopes.resize(max_scopes);
  std::string out = "{\n \"heap_live_bytes\": ";
  out += std::to_string(TrackedHeapBytes());
  out += ",\n \"allocations_total\": ";
  out += std::to_string(TrackedAllocations());
  out += ",\n \"frees_total\": ";
  out += std::to_string(TrackedFrees());
  out += ",\n \"scopes\": [";
  for (size_t i = 0; i < scopes.size(); ++i) {
    const ScopeStats& s = scopes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"label\": ";
    AppendJsonString(s.label, &out);
    out += ", \"scopes\": " + std::to_string(s.scopes);
    out += ", \"bytes_allocated\": " + std::to_string(s.bytes_allocated);
    out += ", \"allocations\": " + std::to_string(s.allocations);
    out += ", \"cpu_ns\": " + std::to_string(s.cpu_ns);
    out += "}";
  }
  out += "\n ]\n}\n";
  return out;
}

}  // namespace rdfdb::obs

// ---- Global allocator hooks ----------------------------------------------
//
// Replacing the global operator new/delete family is the supported way
// to interpose every C++ allocation in the process (libstdc++'s
// internal allocations included — the replaceable functions are
// preempted program-wide). The hooks forward to malloc/free, so under
// ASan the underlying malloc interceptors still see every allocation
// and the leak/overflow checkers keep working; under TSan the counter
// writes are relaxed atomics and thread-locals, introducing no report.
// The full C++17 set (array / nothrow / sized / aligned forms) is
// defined so no default definition with a mismatched deallocator
// survives.

void* operator new(size_t size) { return rdfdb::obs::AllocOrThrow(size); }
void* operator new[](size_t size) { return rdfdb::obs::AllocOrThrow(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr) rdfdb::obs::NoteAlloc(ptr);
  return ptr;
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(size_t size, std::align_val_t alignment) {
  return rdfdb::obs::AllocAlignedOrThrow(size,
                                         static_cast<size_t>(alignment));
}
void* operator new[](size_t size, std::align_val_t alignment) {
  return rdfdb::obs::AllocAlignedOrThrow(size,
                                         static_cast<size_t>(alignment));
}
void* operator new(size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  void* ptr = nullptr;
  const size_t align =
      std::max(static_cast<size_t>(alignment), sizeof(void*));
  if (::posix_memalign(&ptr, align, size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  rdfdb::obs::NoteAlloc(ptr);
  return ptr;
}
void* operator new[](size_t size, std::align_val_t alignment,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, alignment, tag);
}

void operator delete(void* ptr) noexcept { rdfdb::obs::Release(ptr); }
void operator delete[](void* ptr) noexcept { rdfdb::obs::Release(ptr); }
void operator delete(void* ptr, size_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete[](void* ptr, size_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  rdfdb::obs::Release(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  rdfdb::obs::Release(ptr);
}
