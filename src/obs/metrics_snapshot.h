// Interval snapshots over a MetricsRegistry: point-in-time copies of
// every instrument, delta/rate computation between two snapshots, and
// the shared renderings used by tools/dump_metrics --watch,
// tools/rdfdb_top, and the stats server's /varz endpoint — so all three
// surfaces agree on what a "rate" is.
//
// Counters (and histogram count/sum/buckets) are monotonic, so a delta
// between two snapshots is exact regardless of concurrent writers;
// per-interval histogram quantiles come from QuantileFromBuckets over
// the bucket deltas.

#ifndef RDFDB_OBS_METRICS_SNAPSHOT_H_
#define RDFDB_OBS_METRICS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rdfdb::obs {

struct MetricsSnapshot {
  struct Sample {
    MetricsRegistry::Kind kind = MetricsRegistry::Kind::kCounter;
    int64_t value = 0;             ///< counter / gauge reading
    uint64_t count = 0;            ///< histogram only
    uint64_t sum = 0;              ///< histogram only
    std::vector<uint64_t> bounds;  ///< histogram only
    std::vector<uint64_t> buckets; ///< histogram only (disjoint counts)
  };

  int64_t ts_ns = 0;  ///< steady-clock reading at capture
  std::map<std::string, Sample> samples;

  /// Counter value (0 when absent / not a counter).
  int64_t Counter(const std::string& name) const;
  /// Gauge value (0 when absent / not a gauge).
  int64_t Gauge(const std::string& name) const;
};

/// Capture every instrument. Safe to call while writers are active
/// (instrument reads are relaxed atomics; a snapshot is per-instrument
/// consistent, not cross-instrument atomic).
MetricsSnapshot TakeMetricsSnapshot(const MetricsRegistry& registry);

/// Counter delta per second between two snapshots of the same registry
/// (0 when the metric is absent or the interval is empty).
double CounterRate(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                   const std::string& name);

/// q-quantile of a histogram's *per-interval* observations (bucket
/// deltas between the snapshots); 0 when nothing was observed.
double IntervalQuantile(const MetricsSnapshot& prev,
                        const MetricsSnapshot& cur, const std::string& name,
                        double q);

/// Per-interval observation count of a histogram.
uint64_t IntervalCount(const MetricsSnapshot& prev,
                       const MetricsSnapshot& cur, const std::string& name);

/// Human-readable interval report: every counter that moved (delta and
/// rate), every non-zero gauge, and per-interval count/p50/p95/p99 for
/// every histogram that observed anything. Used by dump_metrics --watch.
std::string RenderIntervalText(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur);

/// The stats server's /varz payload: uptime, interval length, the full
/// registry JSON, plus per-interval counter rates. `extra_json` (may be
/// empty) is spliced in as additional top-level members and must be a
/// comma-led fragment like `,"dropped": 3`.
std::string RenderVarzJson(const MetricsRegistry& registry,
                           const MetricsSnapshot& prev,
                           const MetricsSnapshot& cur, double uptime_seconds,
                           const std::string& extra_json = "");

}  // namespace rdfdb::obs

#endif  // RDFDB_OBS_METRICS_SNAPSHOT_H_
