#include "storage/index.h"

#include <algorithm>

namespace rdfdb::storage {

KeyExtractor KeyExtractor::Columns(std::vector<size_t> columns) {
  KeyExtractor e;
  e.columns_ = std::move(columns);
  std::string d = "columns(";
  for (size_t i = 0; i < e.columns_.size(); ++i) {
    if (i > 0) d += ",";
    d += std::to_string(e.columns_[i]);
  }
  e.description_ = d + ")";
  return e;
}

KeyExtractor KeyExtractor::Function(std::function<ValueKey(const Row&)> fn,
                                    std::string description) {
  KeyExtractor e;
  e.fn_ = std::move(fn);
  e.description_ = std::move(description);
  return e;
}

ValueKey KeyExtractor::Extract(const Row& row) const {
  if (fn_) return fn_(row);
  ValueKey key;
  key.reserve(columns_.size());
  for (size_t c : columns_) {
    key.push_back(c < row.size() ? row[c] : Value::Null());
  }
  return key;
}

namespace {

// Shared by both index kinds: postings-list maintenance.
Status InsertPosting(std::vector<RowId>* postings, RowId row_id, bool unique,
                     const std::string& index_name, size_t* entries) {
  if (unique && !postings->empty()) {
    return Status::AlreadyExists("unique index " + index_name +
                                 " violated");
  }
  postings->push_back(row_id);
  ++*entries;
  return Status::OK();
}

void ErasePosting(std::vector<RowId>* postings, RowId row_id,
                  size_t* entries) {
  auto it = std::find(postings->begin(), postings->end(), row_id);
  if (it != postings->end()) {
    postings->erase(it);
    --*entries;
  }
}

size_t KeyBytes(const ValueKey& key) {
  size_t n = sizeof(ValueKey);
  for (const Value& v : key) n += v.ApproxBytes();
  return n;
}

}  // namespace

void Index::FindEach(const ValueKey& key,
                     const std::function<bool(RowId)>& fn) const {
  for (RowId row_id : Find(key)) {
    if (!fn(row_id)) return;
  }
}

Status HashIndex::Insert(const ValueKey& key, RowId row_id) {
  return InsertPosting(&map_[key], row_id, unique(), name(), &entries_);
}

void HashIndex::Erase(const ValueKey& key, RowId row_id) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  ErasePosting(&it->second, row_id, &entries_);
  if (it->second.empty()) map_.erase(it);
}

std::vector<RowId> HashIndex::Find(const ValueKey& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? std::vector<RowId>{} : it->second;
}

void HashIndex::FindEach(const ValueKey& key,
                         const std::function<bool(RowId)>& fn) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  for (RowId row_id : it->second) {
    if (!fn(row_id)) return;
  }
}

size_t HashIndex::ApproxBytes() const {
  size_t n = sizeof(*this);
  for (const auto& [key, postings] : map_) {
    n += KeyBytes(key) + postings.size() * sizeof(RowId) + 32;
  }
  return n;
}

Status OrderedIndex::Insert(const ValueKey& key, RowId row_id) {
  return InsertPosting(&map_[key], row_id, unique(), name(), &entries_);
}

void OrderedIndex::Erase(const ValueKey& key, RowId row_id) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  ErasePosting(&it->second, row_id, &entries_);
  if (it->second.empty()) map_.erase(it);
}

std::vector<RowId> OrderedIndex::Find(const ValueKey& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? std::vector<RowId>{} : it->second;
}

void OrderedIndex::FindEach(const ValueKey& key,
                            const std::function<bool(RowId)>& fn) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  for (RowId row_id : it->second) {
    if (!fn(row_id)) return;
  }
}

std::vector<RowId> OrderedIndex::FindRange(const ValueKey& lo,
                                           const ValueKey& hi) const {
  std::vector<RowId> out;
  for (auto it = map_.lower_bound(lo); it != map_.end(); ++it) {
    if (ValueKeyLess{}(hi, it->first)) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

size_t OrderedIndex::ApproxBytes() const {
  size_t n = sizeof(*this);
  for (const auto& [key, postings] : map_) {
    n += KeyBytes(key) + postings.size() * sizeof(RowId) + 48;
  }
  return n;
}

std::unique_ptr<Index> MakeIndex(IndexKind kind, std::string name,
                                 KeyExtractor extractor, bool unique) {
  if (kind == IndexKind::kHash) {
    return std::make_unique<HashIndex>(std::move(name), std::move(extractor),
                                       unique);
  }
  return std::make_unique<OrderedIndex>(std::move(name), std::move(extractor),
                                        unique);
}

}  // namespace rdfdb::storage
