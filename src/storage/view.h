// Filtered views over a base table — the engine's equivalent of the
// per-model rdfm_<model_name> views the paper creates at CREATE_RDF_MODEL
// time ("a view of the rdf_link$ table that contains only data for the
// model").

#ifndef RDFDB_STORAGE_VIEW_H_
#define RDFDB_STORAGE_VIEW_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/predicate.h"
#include "storage/table.h"

namespace rdfdb::storage {

/// Read-only predicate view of a table. Rows are filtered on the fly;
/// the view holds no data of its own.
class View {
 public:
  View(std::string name, const Table* base, PredicatePtr predicate,
       std::string owner = "");

  const std::string& name() const { return name_; }
  const Table& base() const { return *base_; }

  /// Owner principal (used to model the paper's "accessible only to the
  /// owner of the model and users with SELECT privileges").
  const std::string& owner() const { return owner_; }

  /// Grant SELECT on this view to `user`.
  void GrantSelect(const std::string& user);

  /// True if `user` may read the view (owner or grantee; empty owner means
  /// unrestricted).
  bool CanSelect(const std::string& user) const;

  /// Visit rows of the base table that satisfy the view predicate.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Count of visible rows (scans).
  size_t row_count() const;

 private:
  std::string name_;
  const Table* base_;
  PredicatePtr predicate_;
  std::string owner_;
  std::vector<std::string> grantees_;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_VIEW_H_
