// Env: the filesystem seam for everything persistence touches.
//
// All snapshot, redo-log, and manifest I/O goes through an Env so the
// crash-recovery torture harness (tests/test_crash_recovery.cc) can
// substitute a FaultInjectingEnv that short-writes, fails, or freezes
// ("crashes") at any byte or operation boundary, while production uses
// the PosixEnv behind Env::Default() (write(2), fdatasync(2), atomic
// rename(2), directory fsync).
//
// Durability contract of the default Env:
//   - WritableFile::Append issues the bytes to the OS immediately (no
//     user-space buffer), so a short write never leaves hidden state.
//   - WritableFile::Sync is fdatasync: on OK, appended bytes survive a
//     power cut.
//   - RenameFile is atomic replacement; pairing it with SyncDir on the
//     parent directory makes the new name itself durable.

#ifndef RDFDB_STORAGE_ENV_H_
#define RDFDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::storage {

/// Append-only file handle. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Write `data` at the end of the file. On failure the Status message
  /// carries errno text; the number of bytes actually written is
  /// unspecified (callers must treat the tail as torn).
  virtual Status Append(std::string_view data) = 0;

  /// Push any library-level buffers to the OS (no-op for the unbuffered
  /// posix implementation).
  virtual Status Flush() = 0;

  /// fdatasync: on OK every appended byte is durable.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// Filesystem interface. Thread-safe for independent files.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide real-filesystem Env.
  static Env* Default();

  /// Open `path` for writing. `truncate` discards existing contents;
  /// otherwise writes append after the current end.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Read the entire file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;

  /// Atomically replace `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Shrink (or extend with zeros) `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// fsync the directory `dir` so renames/creates inside it are durable.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Directory part of `path` ("." when there is none).
std::string DirName(const std::string& path);

/// Final component of `path`.
std::string BaseName(const std::string& path);

/// An Env that injects faults for crash testing. Wraps a base Env
/// (default: Env::Default()); every *mutating* operation — Append,
/// Sync, file creation, rename, remove, truncate, directory sync — is
/// counted, and a programmed fault fires when the byte or op budget is
/// exhausted:
///
///   - CrashAfterBytes(n): the Append that would exceed `n` more
///     payload bytes writes only the bytes up to the budget (a torn
///     write lands on the real filesystem), then the env freezes.
///   - CrashAfterOps(n): the (n+1)-th mutating op from now does not
///     execute and the env freezes.
///   - FailOnce(k): the k-th mutating op from now fails with IOError
///     but the env keeps working (tests error paths, not crashes).
///
/// A frozen env fails every subsequent mutating op with IOError, like a
/// process that died mid-write: the test then reopens the on-disk state
/// with a fresh real Env to exercise recovery. When
/// set_drop_unsynced_on_crash(true) is armed, freezing also truncates
/// every still-open file back to its last Sync'd size, simulating loss
/// of page-cache data that was written but never fdatasync'd.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base = nullptr);

  // --- fault programming ------------------------------------------------
  void CrashAfterBytes(uint64_t n);
  void CrashAfterOps(uint64_t n);
  void FailOnce(uint64_t op_from_now);
  void set_drop_unsynced_on_crash(bool v);
  /// Clear all programmed faults and un-freeze.
  void Reset();

  // --- introspection ----------------------------------------------------
  bool crashed() const;
  uint64_t bytes_appended() const;
  uint64_t mutating_ops() const;

  // --- Env --------------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;

  struct OpenFileState {
    std::string path;
    uint64_t written_size = 0;  ///< absolute file size incl. appends
    uint64_t synced_size = 0;   ///< size as of the last successful Sync
  };

  /// Charge one mutating op against the budgets. Returns non-OK when
  /// the op must not execute (fault fired or env already frozen).
  Status ChargeOp(const char* what);
  /// Charge `n` payload bytes; `*allowed` gets the number of bytes the
  /// caller may still write (may be < n on the crashing append).
  Status ChargeBytes(uint64_t n, uint64_t* allowed);
  void TriggerCrashLocked();

  mutable std::mutex mu_;
  Env* base_;
  bool crashed_ = false;
  bool drop_unsynced_on_crash_ = false;
  uint64_t ops_ = 0;
  uint64_t bytes_ = 0;
  uint64_t crash_after_ops_ = 0;   // 0 = unarmed; else remaining ops + 1
  uint64_t crash_after_bytes_ = 0; // 0 = unarmed; else remaining bytes + 1
  uint64_t fail_once_at_ = 0;      // absolute op index to fail, 0 = unarmed
  std::vector<std::shared_ptr<OpenFileState>> open_files_;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_ENV_H_
