#include "storage/database.h"

#include <algorithm>

#include "common/string_util.h"

namespace rdfdb::storage {

Database::Database(std::string name) : name_(std::move(name)) {}

std::string Database::Qualify(const std::string& schema,
                              const std::string& name) {
  return ToUpper(schema) + "." + ToUpper(name);
}

Result<Table*> Database::CreateTable(const std::string& schema,
                                     const std::string& table_name,
                                     Schema columns) {
  std::string key = Qualify(schema, table_name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + key);
  }
  auto table = std::make_unique<Table>(key, std::move(columns));
  Table* raw = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return raw;
}

Table* Database::GetTable(const std::string& schema,
                          const std::string& table_name) {
  auto it = tables_.find(Qualify(schema, table_name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& schema,
                                const std::string& table_name) const {
  auto it = tables_.find(Qualify(schema, table_name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& schema,
                           const std::string& table_name) {
  std::string key = Qualify(schema, table_name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("table " + key);
  // Drop dependent views first.
  const Table* base = it->second.get();
  for (auto vit = views_.begin(); vit != views_.end();) {
    if (&vit->second->base() == base) {
      vit = views_.erase(vit);
    } else {
      ++vit;
    }
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

Result<View*> Database::CreateView(const std::string& schema,
                                   const std::string& view_name,
                                   const Table* base, PredicatePtr predicate,
                                   std::string owner) {
  std::string key = Qualify(schema, view_name);
  if (views_.count(key) > 0) {
    return Status::AlreadyExists("view " + key);
  }
  auto view = std::make_unique<View>(key, base, std::move(predicate),
                                     std::move(owner));
  View* raw = view.get();
  views_.emplace(std::move(key), std::move(view));
  return raw;
}

View* Database::GetView(const std::string& schema,
                        const std::string& view_name) {
  auto it = views_.find(Qualify(schema, view_name));
  return it == views_.end() ? nullptr : it->second.get();
}

const View* Database::GetView(const std::string& schema,
                              const std::string& view_name) const {
  auto it = views_.find(Qualify(schema, view_name));
  return it == views_.end() ? nullptr : it->second.get();
}

Status Database::DropView(const std::string& schema,
                          const std::string& view_name) {
  std::string key = Qualify(schema, view_name);
  if (views_.erase(key) == 0) return Status::NotFound("view " + key);
  return Status::OK();
}

Result<Sequence*> Database::CreateSequence(const std::string& schema,
                                           const std::string& seq_name,
                                           int64_t start) {
  std::string key = Qualify(schema, seq_name);
  if (sequences_.count(key) > 0) {
    return Status::AlreadyExists("sequence " + key);
  }
  auto seq = std::make_unique<Sequence>(key, start);
  Sequence* raw = seq.get();
  sequences_.emplace(std::move(key), std::move(seq));
  return raw;
}

Sequence* Database::GetSequence(const std::string& schema,
                                const std::string& seq_name) {
  auto it = sequences_.find(Qualify(schema, seq_name));
  return it == sequences_.end() ? nullptr : it->second.get();
}

size_t Database::ApproxTotalBytes() const {
  size_t n = 0;
  for (const auto& [key, table] : tables_) n += table->ApproxTotalBytes();
  return n;
}

}  // namespace rdfdb::storage
