// Secondary indexes over a table's rows.
//
// Two physical kinds are provided:
//   * HashIndex    — unordered, O(1) point lookup (the default access path
//                    for the paper's ID and text-value lookups).
//   * OrderedIndex — sorted, supports range scans (B-tree stand-in).
//
// A key is extracted from a row either from a fixed column list or by a
// user-supplied function — the latter models Oracle's *function-based
// indexes*, which §7.2 of the paper requires on application tables
// (e.g. CREATE INDEX ... ON uniprot5m (triple.GET_SUBJECT())).

#ifndef RDFDB_STORAGE_INDEX_H_
#define RDFDB_STORAGE_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace rdfdb::storage {

/// Dense row identifier assigned by the owning table.
using RowId = int64_t;

/// How keys are derived from rows.
class KeyExtractor {
 public:
  /// Key = the listed columns, in order.
  static KeyExtractor Columns(std::vector<size_t> columns);

  /// Key = fn(row); `description` is used in diagnostics. This is the
  /// function-based index path.
  static KeyExtractor Function(std::function<ValueKey(const Row&)> fn,
                               std::string description);

  ValueKey Extract(const Row& row) const;
  const std::string& description() const { return description_; }

 private:
  KeyExtractor() = default;
  std::vector<size_t> columns_;
  std::function<ValueKey(const Row&)> fn_;
  std::string description_;
};

/// Physical index layout.
enum class IndexKind { kHash, kOrdered };

/// Abstract secondary index. Maintained by the owning Table on every
/// insert/update/delete; reads return row-id lists.
class Index {
 public:
  Index(std::string name, KeyExtractor extractor, bool unique)
      : name_(std::move(name)),
        extractor_(std::move(extractor)),
        unique_(unique) {}
  virtual ~Index() = default;

  const std::string& name() const { return name_; }
  bool unique() const { return unique_; }
  const KeyExtractor& extractor() const { return extractor_; }

  /// Add an entry; fails with AlreadyExists on unique violation.
  virtual Status Insert(const ValueKey& key, RowId row_id) = 0;

  /// Remove an entry (no-op if absent).
  virtual void Erase(const ValueKey& key, RowId row_id) = 0;

  /// Row ids whose key equals `key`.
  virtual std::vector<RowId> Find(const ValueKey& key) const = 0;

  /// Stream the row ids whose key equals `key`; return false from `fn`
  /// to stop. Equivalent to iterating Find(key) but without
  /// materializing the posting copy — the join executor probes one key
  /// per binding, so the per-probe allocation matters. The default
  /// delegates to Find(); concrete indexes iterate in place.
  virtual void FindEach(const ValueKey& key,
                        const std::function<bool(RowId)>& fn) const;

  /// Number of distinct (key, row) entries.
  virtual size_t entry_count() const = 0;

  /// Approximate memory footprint in bytes.
  virtual size_t ApproxBytes() const = 0;

  /// Convenience: extract-and-insert for a row.
  Status InsertRow(const Row& row, RowId row_id) {
    return Insert(extractor_.Extract(row), row_id);
  }
  void EraseRow(const Row& row, RowId row_id) {
    Erase(extractor_.Extract(row), row_id);
  }

 private:
  std::string name_;
  KeyExtractor extractor_;
  bool unique_;
};

/// Hash-table index.
class HashIndex final : public Index {
 public:
  HashIndex(std::string name, KeyExtractor extractor, bool unique)
      : Index(std::move(name), std::move(extractor), unique) {}

  Status Insert(const ValueKey& key, RowId row_id) override;
  void Erase(const ValueKey& key, RowId row_id) override;
  std::vector<RowId> Find(const ValueKey& key) const override;
  void FindEach(const ValueKey& key,
                const std::function<bool(RowId)>& fn) const override;
  size_t entry_count() const override { return entries_; }
  size_t ApproxBytes() const override;

 private:
  std::unordered_map<ValueKey, std::vector<RowId>, ValueKeyHash, ValueKeyEq>
      map_;
  size_t entries_ = 0;
};

/// Sorted index with range scans.
class OrderedIndex final : public Index {
 public:
  OrderedIndex(std::string name, KeyExtractor extractor, bool unique)
      : Index(std::move(name), std::move(extractor), unique) {}

  Status Insert(const ValueKey& key, RowId row_id) override;
  void Erase(const ValueKey& key, RowId row_id) override;
  std::vector<RowId> Find(const ValueKey& key) const override;
  void FindEach(const ValueKey& key,
                const std::function<bool(RowId)>& fn) const override;
  size_t entry_count() const override { return entries_; }
  size_t ApproxBytes() const override;

  /// Row ids with lo <= key <= hi (inclusive bounds).
  std::vector<RowId> FindRange(const ValueKey& lo, const ValueKey& hi) const;

 private:
  std::map<ValueKey, std::vector<RowId>, ValueKeyLess> map_;
  size_t entries_ = 0;
};

/// Factory by kind.
std::unique_ptr<Index> MakeIndex(IndexKind kind, std::string name,
                                 KeyExtractor extractor, bool unique);

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_INDEX_H_
