#include "storage/view.h"

#include <algorithm>

namespace rdfdb::storage {

View::View(std::string name, const Table* base, PredicatePtr predicate,
           std::string owner)
    : name_(std::move(name)),
      base_(base),
      predicate_(std::move(predicate)),
      owner_(std::move(owner)) {}

void View::GrantSelect(const std::string& user) {
  if (!CanSelect(user)) grantees_.push_back(user);
}

bool View::CanSelect(const std::string& user) const {
  if (owner_.empty() || user == owner_) return true;
  return std::find(grantees_.begin(), grantees_.end(), user) !=
         grantees_.end();
}

void View::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  base_->Scan([&](RowId id, const Row& row) {
    if (!predicate_->Evaluate(row)) return true;
    return fn(id, row);
  });
}

size_t View::row_count() const {
  size_t n = 0;
  Scan([&](RowId, const Row&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace rdfdb::storage
