#include "storage/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace rdfdb::storage {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kClob:
      return "CLOB";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(as_int64());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", as_double());
      return buf;
    }
    case ValueType::kString:
      return as_string();
    case ValueType::kClob:
      return as_clob();
  }
  return {};
}

namespace {

// Rank for cross-type ordering: NULL < numeric < string < clob.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
    case ValueType::kClob:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Compare in int64 space when both sides are integers to avoid
      // precision loss above 2^53.
      if (type() == ValueType::kInt64 &&
          other.type() == ValueType::kInt64) {
        int64_t a = as_int64();
        int64_t b = other.as_int64();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = numeric();
      double b = other.numeric();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
    case ValueType::kClob: {
      const std::string& a = text();
      const std::string& b = other.text();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt64: {
      // Hash integers through double when representable so that
      // Int64(5) == Double(5.0) implies equal hashes.
      double d = static_cast<double>(as_int64());
      if (static_cast<int64_t>(d) == as_int64()) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return HashCombine(1, bits);
      }
      return HashCombine(1, static_cast<uint64_t>(as_int64()));
    }
    case ValueType::kDouble: {
      double d = as_double();
      if (d == 0.0) d = 0.0;  // collapse -0.0
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(1, bits);
    }
    case ValueType::kString:
      return HashCombine(2, Fnv1a64(as_string()));
    case ValueType::kClob:
      return HashCombine(3, Fnv1a64(as_clob()));
  }
  return 0;
}

size_t Value::ApproxBytes() const {
  switch (type()) {
    case ValueType::kNull:
      return sizeof(Value);
    case ValueType::kInt64:
    case ValueType::kDouble:
      return sizeof(Value);
    case ValueType::kString:
      return sizeof(Value) + as_string().size();
    case ValueType::kClob:
      return sizeof(Value) + as_clob().size();
  }
  return sizeof(Value);
}

uint64_t ValueKeyHash::operator()(const ValueKey& key) const {
  uint64_t h = 0x12345678ULL;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool ValueKeyEq::operator()(const ValueKey& a, const ValueKey& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool ValueKeyLess::operator()(const ValueKey& a, const ValueKey& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace rdfdb::storage
