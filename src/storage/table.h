// Heap table: rows addressed by dense RowId, with secondary indexes and
// optional hash partitioning on one column (the engine's equivalent of the
// paper's "rdf_link$ is partitioned by MODEL_ID").

#ifndef RDFDB_STORAGE_TABLE_H_
#define RDFDB_STORAGE_TABLE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/predicate.h"
#include "storage/schema.h"

namespace rdfdb::storage {

/// Heap-organized table. Not thread-safe; callers serialize access
/// (single-writer model, as in an embedded engine).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // ---- Row operations -----------------------------------------------

  /// Validate and insert; returns the new row id.
  Result<RowId> Insert(Row row);

  /// Append a batch of rows. Every row is validated and staged into the
  /// heap before any secondary-index maintenance runs (the bulk-load
  /// append path); if an index rejects a row (unique violation) the whole
  /// batch is rolled back and the table is unchanged. Returns the new row
  /// ids in input order.
  Result<std::vector<RowId>> InsertBatch(std::vector<Row> rows);

  /// Replace the row at `row_id`; all indexes and the partition map are
  /// updated.
  Status Update(RowId row_id, Row row);

  /// Update a single cell in place.
  Status UpdateCell(RowId row_id, size_t column, Value value);

  /// Tombstone the row at `row_id`.
  Status Delete(RowId row_id);

  /// Row pointer, or nullptr if the id is out of range or deleted.
  const Row* Get(RowId row_id) const;

  /// Number of live rows.
  size_t row_count() const { return live_rows_; }

  // ---- Scans ----------------------------------------------------------

  /// Visit every live row; return false from the callback to stop early.
  void Scan(const std::function<bool(RowId, const Row&)>& fn) const;

  /// Row ids of live rows satisfying `pred` (full scan).
  std::vector<RowId> Select(const Predicate& pred) const;

  // ---- Indexes --------------------------------------------------------

  /// Create and backfill a secondary index. Fails with AlreadyExists if the
  /// name is taken, or with the unique violation if backfill detects one.
  Status CreateIndex(const std::string& index_name, IndexKind kind,
                     KeyExtractor extractor, bool unique);

  /// Drop an index by name.
  Status DropIndex(const std::string& index_name);

  /// Lookup an index; nullptr if absent.
  const Index* GetIndex(const std::string& index_name) const;

  /// Point lookup through a named index.
  Result<std::vector<RowId>> FindByIndex(const std::string& index_name,
                                         const ValueKey& key) const;

  /// Names of all indexes.
  std::vector<std::string> IndexNames() const;

  // ---- Partitioning ---------------------------------------------------

  /// Declare hash partitioning on `column`. Must be called while the table
  /// is empty.
  Status SetPartitionColumn(size_t column);

  /// Whether partitioning is configured.
  bool partitioned() const { return partition_column_.has_value(); }

  /// Visit live rows in the partition whose key equals `key`; returns the
  /// number of rows visited. Falls back to a full scan (with filter) when
  /// the table is not partitioned.
  size_t ScanPartition(const Value& key,
                       const std::function<bool(RowId, const Row&)>& fn) const;

  /// Row count of one partition (0 if the partition is empty/unknown).
  size_t PartitionRowCount(const Value& key) const;

  // ---- Accounting -----------------------------------------------------

  /// Approximate bytes of row data (excluding indexes).
  size_t ApproxDataBytes() const { return data_bytes_; }

  /// Approximate bytes including all indexes.
  size_t ApproxTotalBytes() const;

 private:
  Status IndexesInsert(const Row& row, RowId row_id);
  void IndexesErase(const Row& row, RowId row_id);
  void PartitionInsert(const Row& row, RowId row_id);
  void PartitionErase(const Row& row, RowId row_id);
  static size_t RowBytes(const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<std::optional<Row>> rows_;  // index == RowId
  size_t live_rows_ = 0;
  size_t data_bytes_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::unordered_map<std::string, size_t> index_by_name_;
  std::optional<size_t> partition_column_;
  std::unordered_map<ValueKey, std::vector<RowId>, ValueKeyHash, ValueKeyEq>
      partitions_;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_TABLE_H_
