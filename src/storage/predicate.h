// Predicate expression trees evaluated against rows, used by table scans
// and filtered views (the engine's WHERE-clause equivalent).

#ifndef RDFDB_STORAGE_PREDICATE_H_
#define RDFDB_STORAGE_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace rdfdb::storage {

/// Comparison operators for leaf predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Immutable boolean expression over a row. Build with the factory
/// functions below and combine with And/Or/Not.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluate against a row. NULL cells make comparisons false
  /// (SQL-like: NULL = x is not true).
  virtual bool Evaluate(const Row& row) const = 0;

  /// Diagnostic rendering, e.g. "(col[2] = 'cia' AND col[0] > 10)".
  virtual std::string ToString() const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// column <op> constant.
PredicatePtr Compare(size_t column, CompareOp op, Value constant);

/// Shorthand for Compare(column, kEq, constant).
PredicatePtr Eq(size_t column, Value constant);

/// column IS NULL.
PredicatePtr IsNull(size_t column);

/// Conjunction; with no children evaluates to true.
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr And(PredicatePtr a, PredicatePtr b);

/// Disjunction; with no children evaluates to false.
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Or(PredicatePtr a, PredicatePtr b);

/// Negation.
PredicatePtr Not(PredicatePtr child);

/// Constant TRUE.
PredicatePtr True();

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_PREDICATE_H_
