#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rdfdb::storage {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " +
                         std::strerror(errno));
}

// --- PosixEnv -----------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write failed on", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // unbuffered

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return ErrnoStatus("fdatasync failed on", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close failed on", path_);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("cannot open", path);
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("cannot open", path);
    std::string out;
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      out.reserve(static_cast<size_t>(st.st_size));
    }
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = ErrnoStatus("read failed on", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("cannot stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename failed for", from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("unlink failed for", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate failed for", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("cannot open dir", dir);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync failed on dir", dir);
    ::close(fd);
    return status;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return path;
  return path.substr(slash + 1);
}

// --- FaultInjectingEnv --------------------------------------------------

namespace {

Status FrozenStatus() {
  return Status::IOError("simulated crash: env is frozen");
}

}  // namespace

/// WritableFile wrapper that charges the owning FaultInjectingEnv for
/// every append byte and mutating op.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env,
                    std::unique_ptr<WritableFile> base,
                    std::shared_ptr<FaultInjectingEnv::OpenFileState> state)
      : env_(env), base_(std::move(base)), state_(std::move(state)) {}

  ~FaultWritableFile() override { Unregister(); }

  Status Append(std::string_view data) override {
    RDFDB_RETURN_NOT_OK(env_->ChargeOp("append"));
    uint64_t allowed = 0;
    Status budget = env_->ChargeBytes(data.size(), &allowed);
    if (allowed > 0) {
      Status written = base_->Append(data.substr(0, allowed));
      if (!written.ok()) return written;
      std::lock_guard<std::mutex> lock(env_->mu_);
      state_->written_size += allowed;
    }
    if (!budget.ok()) {
      // The crash fired mid-append: apply unsynced-drop *after* the
      // torn bytes landed, so the drop policy governs what survives.
      std::lock_guard<std::mutex> lock(env_->mu_);
      env_->TriggerCrashLocked();
      return budget;
    }
    return Status::OK();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    RDFDB_RETURN_NOT_OK(env_->ChargeOp("sync"));
    RDFDB_RETURN_NOT_OK(base_->Sync());
    std::lock_guard<std::mutex> lock(env_->mu_);
    state_->synced_size = state_->written_size;
    return Status::OK();
  }

  Status Close() override {
    Unregister();
    return base_->Close();
  }

 private:
  void Unregister() {
    std::lock_guard<std::mutex> lock(env_->mu_);
    auto& files = env_->open_files_;
    for (auto it = files.begin(); it != files.end(); ++it) {
      if (it->get() == state_.get()) {
        files.erase(it);
        break;
      }
    }
  }

  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultInjectingEnv::OpenFileState> state_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectingEnv::CrashAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_bytes_ = n + 1;
}

void FaultInjectingEnv::CrashAfterOps(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_ops_ = n + 1;
}

void FaultInjectingEnv::FailOnce(uint64_t op_from_now) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_once_at_ = ops_ + op_from_now;
}

void FaultInjectingEnv::set_drop_unsynced_on_crash(bool v) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_unsynced_on_crash_ = v;
}

void FaultInjectingEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  crash_after_ops_ = 0;
  crash_after_bytes_ = 0;
  fail_once_at_ = 0;
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectingEnv::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t FaultInjectingEnv::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

void FaultInjectingEnv::TriggerCrashLocked() {
  if (crashed_) return;
  crashed_ = true;
  if (drop_unsynced_on_crash_) {
    for (const auto& file : open_files_) {
      if (file->written_size != file->synced_size) {
        (void)base_->TruncateFile(file->path, file->synced_size);
        file->written_size = file->synced_size;
      }
    }
  }
}

Status FaultInjectingEnv::ChargeOp(const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return FrozenStatus();
  ++ops_;
  if (fail_once_at_ != 0 && ops_ == fail_once_at_) {
    fail_once_at_ = 0;
    return Status::IOError(std::string("injected fault on op '") + what +
                           "'");
  }
  if (crash_after_ops_ != 0) {
    if (crash_after_ops_ == 1) {
      TriggerCrashLocked();
      return Status::IOError(std::string("simulated crash before op '") +
                             what + "'");
    }
    --crash_after_ops_;
  }
  return Status::OK();
}

Status FaultInjectingEnv::ChargeBytes(uint64_t n, uint64_t* allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  *allowed = n;
  if (crashed_) {
    *allowed = 0;
    return FrozenStatus();
  }
  if (crash_after_bytes_ != 0) {
    uint64_t remaining = crash_after_bytes_ - 1;
    if (n >= remaining) {
      *allowed = remaining;
      crash_after_bytes_ = 1;  // budget exhausted
      bytes_ += remaining;
      // Caller triggers the crash after writing the torn prefix.
      return Status::IOError("simulated crash: short write");
    }
    crash_after_bytes_ -= n;
  }
  bytes_ += n;
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  RDFDB_RETURN_NOT_OK(ChargeOp("create"));
  uint64_t initial_size = 0;
  if (!truncate && base_->FileExists(path)) {
    RDFDB_ASSIGN_OR_RETURN(initial_size, base_->GetFileSize(path));
  }
  RDFDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path, truncate));
  auto state = std::make_shared<OpenFileState>();
  state->path = path;
  state->written_size = initial_size;
  state->synced_size = initial_size;  // pre-existing bytes are durable
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_files_.push_back(state);
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(base), std::move(state)));
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  RDFDB_RETURN_NOT_OK(ChargeOp("rename"));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  RDFDB_RETURN_NOT_OK(ChargeOp("remove"));
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  RDFDB_RETURN_NOT_OK(ChargeOp("truncate"));
  return base_->TruncateFile(path, size);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  RDFDB_RETURN_NOT_OK(ChargeOp("syncdir"));
  return base_->SyncDir(dir);
}

}  // namespace rdfdb::storage
