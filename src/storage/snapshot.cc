#include "storage/snapshot.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace rdfdb::storage {

namespace {

constexpr uint32_t kMagic = 0x52444244;  // "RDBD"
constexpr uint32_t kVersion = 1;

void PutU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool GetI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool GetString(std::istream& in, std::string* s) {
  uint32_t len;
  if (!GetU32(in, &len)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return in.good() || (len == 0 && !in.bad());
}

void PutValue(std::ostream& out, const Value& v) {
  PutU32(out, static_cast<uint32_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutI64(out, v.as_int64());
      break;
    case ValueType::kDouble: {
      double d = v.as_double();
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case ValueType::kString:
      PutString(out, v.as_string());
      break;
    case ValueType::kClob:
      PutString(out, v.as_clob());
      break;
  }
}

bool GetValue(std::istream& in, Value* v) {
  uint32_t tag;
  if (!GetU32(in, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t i;
      if (!GetI64(in, &i)) return false;
      *v = Value::Int64(i);
      return true;
    }
    case ValueType::kDouble: {
      double d;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in.good()) return false;
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(in, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kClob: {
      std::string s;
      if (!GetString(in, &s)) return false;
      *v = Value::Clob(std::move(s));
      return true;
    }
  }
  return false;
}

}  // namespace

Status SaveSnapshot(const Database& db, std::ostream& out,
                    obs::Timeline* timeline) {
  PutU32(out, kMagic);
  PutU32(out, kVersion);

  std::vector<std::string> names = db.TableNames();
  PutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& qualified : names) {
    obs::TimelineScope table_span(timeline, "save_table", "snapshot",
                                  /*lane=*/0, qualified);
    size_t dot = qualified.find('.');
    std::string schema = qualified.substr(0, dot);
    std::string table_name = qualified.substr(dot + 1);
    const Table* table = db.GetTable(schema, table_name);
    PutString(out, schema);
    PutString(out, table_name);
    // Schema.
    PutU32(out, static_cast<uint32_t>(table->schema().num_columns()));
    for (const ColumnDef& col : table->schema().columns()) {
      PutString(out, col.name);
      PutU32(out, static_cast<uint32_t>(col.type));
      PutU32(out, col.nullable ? 1 : 0);
    }
    // Rows.
    PutU32(out, static_cast<uint32_t>(table->row_count()));
    table->Scan([&](RowId, const Row& row) {
      for (const Value& cell : row) PutValue(out, cell);
      return true;
    });
  }

  if (!out.good()) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Status SaveSnapshotToFile(const Database& db, const std::string& path,
                          obs::Timeline* timeline) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  return SaveSnapshot(db, out, timeline);
}

Status LoadSnapshot(std::istream& in, Database* db, obs::Timeline* timeline) {
  uint32_t magic, version;
  if (!GetU32(in, &magic) || magic != kMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (!GetU32(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  uint32_t num_tables;
  if (!GetU32(in, &num_tables)) return Status::Corruption("truncated header");

  for (uint32_t t = 0; t < num_tables; ++t) {
    obs::TimelineScope table_span(timeline, "load_table", "snapshot");
    std::string schema_name, table_name;
    if (!GetString(in, &schema_name) || !GetString(in, &table_name)) {
      return Status::Corruption("truncated table header");
    }
    uint32_t num_cols;
    if (!GetU32(in, &num_cols)) return Status::Corruption("truncated schema");
    std::vector<ColumnDef> cols;
    cols.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnDef col;
      uint32_t type_tag, nullable;
      if (!GetString(in, &col.name) || !GetU32(in, &type_tag) ||
          !GetU32(in, &nullable)) {
        return Status::Corruption("truncated column def");
      }
      col.type = static_cast<ValueType>(type_tag);
      col.nullable = nullable != 0;
      cols.push_back(std::move(col));
    }
    auto table_result =
        db->CreateTable(schema_name, table_name, Schema(std::move(cols)));
    if (!table_result.ok()) return table_result.status();
    Table* table = *table_result;

    uint32_t num_rows;
    if (!GetU32(in, &num_rows)) return Status::Corruption("truncated rows");
    for (uint32_t r = 0; r < num_rows; ++r) {
      Row row(table->schema().num_columns());
      for (Value& cell : row) {
        if (!GetValue(in, &cell)) return Status::Corruption("truncated cell");
      }
      auto insert = table->Insert(std::move(row));
      if (!insert.ok()) return insert.status();
    }
  }
  return Status::OK();
}

Status LoadSnapshotFromFile(const std::string& path, Database* db,
                            obs::Timeline* timeline) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  return LoadSnapshot(in, db, timeline);
}

}  // namespace rdfdb::storage
