#include "storage/snapshot.h"

#include <cstdint>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/crc32c.h"

namespace rdfdb::storage {

namespace {

constexpr uint32_t kMagic = 0x52444244;  // "RDBD" (payload header)
constexpr uint32_t kVersion = 1;

constexpr uint32_t kFooterMagic = 0x52444246;  // "RDBF"
constexpr uint32_t kFooterVersion = 1;
// u32 table_count + u64 payload_size + u32 crc + u32 version + u32 magic
constexpr size_t kFooterSize = 4 + 8 + 4 + 4 + 4;

// Sanity caps for count fields: corrupt counts must fail fast, not
// drive giant loops. (Byte-sized fields are bounded by the stream size
// instead — see StreamBytesLeft.)
constexpr uint32_t kMaxTables = 1u << 20;
constexpr uint32_t kMaxColumns = 1u << 16;

void PutU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

uint32_t ReadU32(std::string_view bytes, size_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

uint64_t ReadU64(std::string_view bytes, size_t offset) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

bool GetU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool GetI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

/// Bytes between the current read position and end-of-stream, or
/// `fallback` when the stream is not seekable. Bounds every
/// length-prefixed allocation: no in-stream length can legitimately
/// exceed the bytes that are actually left.
uint64_t StreamBytesLeft(std::istream& in, uint64_t fallback) {
  std::streampos cur = in.tellg();
  if (cur == std::streampos(-1)) return fallback;
  in.seekg(0, std::ios::end);
  std::streampos end = in.tellg();
  in.seekg(cur);
  if (end == std::streampos(-1) || end < cur) return fallback;
  return static_cast<uint64_t>(end - cur);
}

bool GetString(std::istream& in, std::string* s, uint64_t max_len) {
  uint32_t len;
  if (!GetU32(in, &len)) return false;
  if (len > max_len) return false;  // corrupt length field
  s->resize(len);
  in.read(s->data(), len);
  return in.good() || (len == 0 && !in.bad());
}

void PutValue(std::ostream& out, const Value& v) {
  PutU32(out, static_cast<uint32_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutI64(out, v.as_int64());
      break;
    case ValueType::kDouble: {
      double d = v.as_double();
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case ValueType::kString:
      PutString(out, v.as_string());
      break;
    case ValueType::kClob:
      PutString(out, v.as_clob());
      break;
  }
}

bool GetValue(std::istream& in, Value* v, uint64_t max_len) {
  uint32_t tag;
  if (!GetU32(in, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t i;
      if (!GetI64(in, &i)) return false;
      *v = Value::Int64(i);
      return true;
    }
    case ValueType::kDouble: {
      double d;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (!in.good()) return false;
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(in, &s, max_len)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case ValueType::kClob: {
      std::string s;
      if (!GetString(in, &s, max_len)) return false;
      *v = Value::Clob(std::move(s));
      return true;
    }
  }
  return false;
}

/// Corruption status annotated with the stream's byte offset. Clears
/// the stream's error flags first so tellg still answers after a
/// failed read (the stream is abandoned after this anyway).
Status CorruptAt(std::istream& in, const std::string& why) {
  in.clear();
  std::streampos pos = in.tellg();
  std::string at = (pos == std::streampos(-1))
                       ? "unknown offset"
                       : "byte offset " +
                             std::to_string(static_cast<int64_t>(pos));
  return Status::Corruption("snapshot: " + why + " (at " + at + ")");
}

std::string EncodeFooter(uint32_t table_count, const std::string& payload) {
  std::ostringstream footer;
  PutU32(footer, table_count);
  PutU64(footer, payload.size());
  PutU32(footer, Crc32c(payload));
  PutU32(footer, kFooterVersion);
  PutU32(footer, kFooterMagic);
  return footer.str();
}

Env* OrDefault(Env* env) { return env != nullptr ? env : Env::Default(); }

/// Read `path`, verify the footer envelope, and return (info, payload).
Result<std::pair<SnapshotFileInfo, std::string>> ReadVerifiedFile(
    const std::string& path, Env* env) {
  if (!env->FileExists(path)) {
    return Status::IOError("cannot open " + path);
  }
  RDFDB_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  if (data.size() < kFooterSize) {
    return Status::Corruption(
        "snapshot " + path + ": file too small for footer (" +
        std::to_string(data.size()) + " bytes)");
  }
  size_t fo = data.size() - kFooterSize;
  SnapshotFileInfo info;
  info.table_count = ReadU32(data, fo);
  info.payload_size = ReadU64(data, fo + 4);
  info.payload_crc = ReadU32(data, fo + 12);
  uint32_t version = ReadU32(data, fo + 16);
  uint32_t magic = ReadU32(data, fo + 20);
  if (magic != kFooterMagic) {
    return Status::Corruption("snapshot " + path +
                              ": bad footer magic (at byte offset " +
                              std::to_string(fo + 20) + ")");
  }
  if (version != kFooterVersion) {
    return Status::Corruption("snapshot " + path +
                              ": unsupported footer version " +
                              std::to_string(version));
  }
  if (info.payload_size != data.size() - kFooterSize) {
    return Status::Corruption(
        "snapshot " + path + ": footer payload_size " +
        std::to_string(info.payload_size) + " != actual " +
        std::to_string(data.size() - kFooterSize));
  }
  std::string payload = data.substr(0, fo);
  uint32_t actual_crc = Crc32c(payload);
  if (actual_crc != info.payload_crc) {
    return Status::Corruption(
        "snapshot " + path + ": payload CRC32C mismatch (stored " +
        std::to_string(info.payload_crc) + ", computed " +
        std::to_string(actual_crc) + " over " +
        std::to_string(payload.size()) + " bytes)");
  }
  return std::make_pair(info, std::move(payload));
}

}  // namespace

Status SaveSnapshot(const Database& db, std::ostream& out,
                    obs::Timeline* timeline) {
  PutU32(out, kMagic);
  PutU32(out, kVersion);

  std::vector<std::string> names = db.TableNames();
  PutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& qualified : names) {
    obs::TimelineScope table_span(timeline, "save_table", "snapshot",
                                  /*lane=*/0, qualified);
    size_t dot = qualified.find('.');
    std::string schema = qualified.substr(0, dot);
    std::string table_name = qualified.substr(dot + 1);
    const Table* table = db.GetTable(schema, table_name);
    PutString(out, schema);
    PutString(out, table_name);
    // Schema.
    PutU32(out, static_cast<uint32_t>(table->schema().num_columns()));
    for (const ColumnDef& col : table->schema().columns()) {
      PutString(out, col.name);
      PutU32(out, static_cast<uint32_t>(col.type));
      PutU32(out, col.nullable ? 1 : 0);
    }
    // Rows.
    PutU32(out, static_cast<uint32_t>(table->row_count()));
    table->Scan([&](RowId, const Row& row) {
      for (const Value& cell : row) PutValue(out, cell);
      return true;
    });
  }

  if (!out.good()) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Status SaveSnapshotToFile(const Database& db, const std::string& path,
                          Env* env, obs::Timeline* timeline) {
  env = OrDefault(env);
  std::ostringstream payload_stream;
  RDFDB_RETURN_NOT_OK(SaveSnapshot(db, payload_stream, timeline));
  std::string payload = std::move(payload_stream).str();
  std::string footer =
      EncodeFooter(static_cast<uint32_t>(db.TableNames().size()), payload);

  // tmp → append payload+footer → fsync → rename over `path` → fsync
  // dir: a crash at any instant leaves `path` as either the complete
  // old snapshot or the complete new one, never a torn mix.
  const std::string tmp = path + ".tmp";
  RDFDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(tmp, /*truncate=*/true));
  RDFDB_RETURN_NOT_OK(file->Append(payload));
  RDFDB_RETURN_NOT_OK(file->Append(footer));
  RDFDB_RETURN_NOT_OK(file->Sync());
  RDFDB_RETURN_NOT_OK(file->Close());
  RDFDB_RETURN_NOT_OK(env->RenameFile(tmp, path));
  return env->SyncDir(DirName(path));
}

Status LoadSnapshot(std::istream& in, Database* db, obs::Timeline* timeline) {
  // Every allocation below is capped by the bytes actually present so
  // a corrupt length field fails cleanly instead of allocating GBs.
  const uint64_t stream_bytes =
      StreamBytesLeft(in, /*fallback=*/1ull << 30);

  uint32_t magic, version;
  if (!GetU32(in, &magic) || magic != kMagic) {
    return CorruptAt(in, "bad payload magic");
  }
  if (!GetU32(in, &version) || version != kVersion) {
    return CorruptAt(in, "unsupported payload version");
  }
  uint32_t num_tables;
  if (!GetU32(in, &num_tables)) return CorruptAt(in, "truncated header");
  if (num_tables > kMaxTables) {
    return CorruptAt(in, "implausible table count " +
                             std::to_string(num_tables));
  }

  for (uint32_t t = 0; t < num_tables; ++t) {
    obs::TimelineScope table_span(timeline, "load_table", "snapshot");
    std::string schema_name, table_name;
    if (!GetString(in, &schema_name, stream_bytes) ||
        !GetString(in, &table_name, stream_bytes)) {
      return CorruptAt(in, "truncated or oversized table header");
    }
    uint32_t num_cols;
    if (!GetU32(in, &num_cols)) return CorruptAt(in, "truncated schema");
    if (num_cols > kMaxColumns) {
      return CorruptAt(in, "implausible column count " +
                               std::to_string(num_cols) + " for table " +
                               schema_name + "." + table_name);
    }
    std::vector<ColumnDef> cols;
    cols.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnDef col;
      uint32_t type_tag, nullable;
      if (!GetString(in, &col.name, stream_bytes) ||
          !GetU32(in, &type_tag) || !GetU32(in, &nullable)) {
        return CorruptAt(in, "truncated column def");
      }
      col.type = static_cast<ValueType>(type_tag);
      col.nullable = nullable != 0;
      cols.push_back(std::move(col));
    }
    auto table_result =
        db->CreateTable(schema_name, table_name, Schema(std::move(cols)));
    if (!table_result.ok()) return table_result.status();
    Table* table = *table_result;

    uint32_t num_rows;
    if (!GetU32(in, &num_rows)) return CorruptAt(in, "truncated rows");
    for (uint32_t r = 0; r < num_rows; ++r) {
      Row row(table->schema().num_columns());
      for (Value& cell : row) {
        if (!GetValue(in, &cell, stream_bytes)) {
          return CorruptAt(in, "truncated or oversized cell in " +
                                   schema_name + "." + table_name);
        }
      }
      auto insert = table->Insert(std::move(row));
      if (!insert.ok()) return insert.status();
    }
  }
  return Status::OK();
}

Status LoadSnapshotFromFile(const std::string& path, Database* db,
                            Env* env, obs::Timeline* timeline) {
  env = OrDefault(env);
  RDFDB_ASSIGN_OR_RETURN(auto verified, ReadVerifiedFile(path, env));
  const SnapshotFileInfo& info = verified.first;
  std::istringstream in(verified.second);
  RDFDB_RETURN_NOT_OK(LoadSnapshot(in, db, timeline));
  // The parser must consume the payload exactly: leftover bytes mean
  // the file and its footer disagree about structure.
  std::streampos pos = in.tellg();
  if (pos != std::streampos(-1) &&
      static_cast<uint64_t>(pos) != info.payload_size) {
    return Status::Corruption(
        "snapshot " + path + ": trailing junk after table data (parsed " +
        std::to_string(static_cast<int64_t>(pos)) + " of " +
        std::to_string(info.payload_size) + " payload bytes)");
  }
  if (db->TableNames().size() != info.table_count) {
    return Status::Corruption(
        "snapshot " + path + ": footer table_count " +
        std::to_string(info.table_count) + " != loaded " +
        std::to_string(db->TableNames().size()));
  }
  return Status::OK();
}

Result<SnapshotFileInfo> VerifySnapshotFile(const std::string& path,
                                            Env* env) {
  env = OrDefault(env);
  RDFDB_ASSIGN_OR_RETURN(auto verified, ReadVerifiedFile(path, env));
  // Cross-check the footer's table count against the payload header.
  const std::string& payload = verified.second;
  if (payload.size() < 12 || ReadU32(payload, 0) != kMagic) {
    return Status::Corruption("snapshot " + path +
                              ": bad payload magic behind valid footer");
  }
  if (ReadU32(payload, 8) != verified.first.table_count) {
    return Status::Corruption(
        "snapshot " + path + ": footer table_count " +
        std::to_string(verified.first.table_count) +
        " != payload header " + std::to_string(ReadU32(payload, 8)));
  }
  return verified.first;
}

}  // namespace rdfdb::storage
