// Value: the dynamically-typed cell stored in storage-engine rows.
//
// The engine supports five cell types, mirroring what the paper's schema
// needs from Oracle: NUMBER (int64 / double), VARCHAR2 (string), CLOB
// (long string, used for long literals), and NULL.

#ifndef RDFDB_STORAGE_VALUE_H_
#define RDFDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rdfdb::storage {

/// Cell type tags. kClob is distinct from kString so schemas can declare
/// long-text columns (the paper's LONG_VALUE / GET_OBJECT() CLOB paths).
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kClob,
};

const char* ValueTypeName(ValueType t);

/// A single dynamically-typed cell.
class Value {
 public:
  /// NULL cell.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Clob(std::string v) {
    return Value(Rep(std::in_place_index<4>, ClobRep{std::move(v)}));
  }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Caller must check type() first; calling the wrong
  /// accessor is undefined (asserts in debug builds).
  int64_t as_int64() const { return std::get<1>(rep_); }
  double as_double() const { return std::get<2>(rep_); }
  const std::string& as_string() const { return std::get<3>(rep_); }
  const std::string& as_clob() const { return std::get<4>(rep_).data; }

  /// String payload for kString or kClob cells.
  const std::string& text() const {
    return type() == ValueType::kClob ? as_clob() : as_string();
  }

  /// Numeric payload widened to double (kInt64 or kDouble cells).
  double numeric() const {
    return type() == ValueType::kInt64 ? static_cast<double>(as_int64())
                                       : as_double();
  }

  /// Render for diagnostics; NULL renders as "NULL".
  std::string ToString() const;

  /// Total-order comparison used by ordered indexes: NULL < numbers <
  /// strings < clobs; numbers compare numerically across kInt64/kDouble.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric cells hash by double value).
  uint64_t Hash() const;

  /// Approximate in-memory footprint in bytes (for storage accounting).
  size_t ApproxBytes() const;

 private:
  struct ClobRep {
    std::string data;
  };
  using Rep =
      std::variant<std::monostate, int64_t, double, std::string, ClobRep>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Composite key: an ordered list of cells. Used as index key type.
using ValueKey = std::vector<Value>;

struct ValueKeyHash {
  uint64_t operator()(const ValueKey& key) const;
};

struct ValueKeyEq {
  bool operator()(const ValueKey& a, const ValueKey& b) const;
};

struct ValueKeyLess {
  bool operator()(const ValueKey& a, const ValueKey& b) const;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_VALUE_H_
