#include "storage/schema.h"

namespace rdfdb::storage {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
}

int Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : static_cast<int>(it->second);
}

namespace {

bool TypeCompatible(ValueType cell, ValueType col) {
  if (cell == col) return true;
  if (cell == ValueType::kInt64 && col == ValueType::kDouble) return true;
  if (cell == ValueType::kString && col == ValueType::kClob) return true;
  return false;
}

}  // namespace

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column " + col.name);
      }
      continue;
    }
    if (!TypeCompatible(row[i].type(), col.type)) {
      return Status::InvalidArgument(
          std::string("type mismatch in column ") + col.name + ": cell is " +
          ValueTypeName(row[i].type()) + ", column is " +
          ValueTypeName(col.type));
    }
  }
  return Status::OK();
}

}  // namespace rdfdb::storage
