// Binary snapshot persistence for a Database.
//
// Persists table schemas and live rows. Indexes and views are *not*
// serialized (function-based index extractors are arbitrary code);
// callers re-create them after load — the RDF layer does this in
// RdfStore::Open.
//
// Two layers:
//
//   - SaveSnapshot/LoadSnapshot: the stream-level payload codec
//     (magic, version, tables). No integrity envelope — used by tests
//     and as the inner payload of snapshot files.
//
//   - SaveSnapshotToFile/LoadSnapshotFromFile: the crash-safe file
//     format. The payload is followed by a fixed 24-byte footer
//
//         u32 table_count | u64 payload_size | u32 payload_crc32c |
//         u32 footer_version | u32 footer_magic ("RDBF")
//
//     and written write-tmp → fsync → rename → fsync-dir, so the file
//     named `path` is always either the complete old snapshot or the
//     complete new one. Loading verifies the footer (magic, version,
//     size, CRC32C over the payload) before parsing, and the parser
//     itself bounds every allocation by the stream size so a corrupt
//     length field can never trigger a multi-GB allocation.
//
// All file I/O goes through storage::Env (env.h); passing nullptr uses
// Env::Default(). The fault-injection crash tests substitute a
// FaultInjectingEnv here.

#ifndef RDFDB_STORAGE_SNAPSHOT_H_
#define RDFDB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/span_timeline.h"
#include "storage/database.h"
#include "storage/env.h"

namespace rdfdb::storage {

/// Serialize every table of `db` to `out` (payload codec only, no
/// footer). A non-null `timeline` gets one span per table (category
/// "snapshot") on lane 0.
Status SaveSnapshot(const Database& db, std::ostream& out,
                    obs::Timeline* timeline = nullptr);

/// Atomically write the footered snapshot file at `path` (tmp + fsync +
/// rename + dir fsync). `env` == nullptr uses Env::Default().
Status SaveSnapshotToFile(const Database& db, const std::string& path,
                          Env* env = nullptr,
                          obs::Timeline* timeline = nullptr);

/// Recreate tables from `in` into `db` (which must be empty of
/// conflicting names). Payload codec only: no footer expected. Every
/// length field is sanity-capped against the stream size; violations
/// return Corruption with the byte offset.
Status LoadSnapshot(std::istream& in, Database* db,
                    obs::Timeline* timeline = nullptr);

/// Load a footered snapshot file: verifies footer magic/version/size
/// and the payload CRC32C before parsing, and rejects trailing junk.
Status LoadSnapshotFromFile(const std::string& path, Database* db,
                            Env* env = nullptr,
                            obs::Timeline* timeline = nullptr);

/// Integrity facts about a footered snapshot file (rdfdb_fsck).
struct SnapshotFileInfo {
  uint32_t table_count = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
};

/// Verify the footer and payload CRC of the snapshot at `path` without
/// materializing any tables. Corruption/IOError on any mismatch.
Result<SnapshotFileInfo> VerifySnapshotFile(const std::string& path,
                                            Env* env = nullptr);

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_SNAPSHOT_H_
