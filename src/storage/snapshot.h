// Binary snapshot persistence for a Database.
//
// Persists table schemas, partition declarations, live rows, and sequence
// positions. Indexes and views are *not* serialized (function-based index
// extractors are arbitrary code); callers re-create them after load — the
// RDF layer does this in RdfStore::Open.

#ifndef RDFDB_STORAGE_SNAPSHOT_H_
#define RDFDB_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "obs/span_timeline.h"
#include "storage/database.h"

namespace rdfdb::storage {

/// Serialize every table and sequence of `db` to `out`. A non-null
/// `timeline` gets one span per table (category "snapshot") on lane 0.
Status SaveSnapshot(const Database& db, std::ostream& out,
                    obs::Timeline* timeline = nullptr);

/// Serialize to a file path.
Status SaveSnapshotToFile(const Database& db, const std::string& path,
                          obs::Timeline* timeline = nullptr);

/// Recreate tables and sequences from `in` into `db` (which must be empty
/// of conflicting names). A non-null `timeline` gets one span per table.
Status LoadSnapshot(std::istream& in, Database* db,
                    obs::Timeline* timeline = nullptr);

/// Load from a file path.
Status LoadSnapshotFromFile(const std::string& path, Database* db,
                            obs::Timeline* timeline = nullptr);

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_SNAPSHOT_H_
