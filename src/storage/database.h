// Database: the catalog of tables, views and sequences, organized by
// schema (the paper stores all RDF data "in a central schema", MDSYS).

#ifndef RDFDB_STORAGE_DATABASE_H_
#define RDFDB_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/sequence.h"
#include "storage/table.h"
#include "storage/view.h"

namespace rdfdb::storage {

/// Catalog and owner of all storage objects. Object names are qualified
/// as "<schema>.<name>"; the convenience overloads default the schema.
class Database {
 public:
  explicit Database(std::string name = "ORADB");

  const std::string& name() const { return name_; }

  // ---- Tables ---------------------------------------------------------

  /// Create a table; fails with AlreadyExists if the qualified name is
  /// taken.
  Result<Table*> CreateTable(const std::string& schema,
                             const std::string& table_name, Schema columns);

  /// Fetch a table; nullptr if absent.
  Table* GetTable(const std::string& schema, const std::string& table_name);
  const Table* GetTable(const std::string& schema,
                        const std::string& table_name) const;

  /// Drop a table (and any views defined on it).
  Status DropTable(const std::string& schema, const std::string& table_name);

  /// Qualified names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  // ---- Views ----------------------------------------------------------

  Result<View*> CreateView(const std::string& schema,
                           const std::string& view_name, const Table* base,
                           PredicatePtr predicate, std::string owner = "");
  View* GetView(const std::string& schema, const std::string& view_name);
  const View* GetView(const std::string& schema,
                      const std::string& view_name) const;
  Status DropView(const std::string& schema, const std::string& view_name);

  // ---- Sequences ------------------------------------------------------

  Result<Sequence*> CreateSequence(const std::string& schema,
                                   const std::string& seq_name,
                                   int64_t start = 1);
  Sequence* GetSequence(const std::string& schema,
                        const std::string& seq_name);

  /// Total approximate footprint of all tables (data + indexes).
  size_t ApproxTotalBytes() const;

 private:
  static std::string Qualify(const std::string& schema,
                             const std::string& name);

  std::string name_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<View>> views_;
  std::unordered_map<std::string, std::unique_ptr<Sequence>> sequences_;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_DATABASE_H_
