// Table schema: ordered, named, typed columns.

#ifndef RDFDB_STORAGE_SCHEMA_H_
#define RDFDB_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace rdfdb::storage {

/// One column declaration.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

/// Ordered column list with name lookup and row validation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Check arity, per-column type compatibility and NOT NULL constraints.
  /// kInt64 values are accepted into kDouble columns, and kString into
  /// kClob columns (widening only).
  Status ValidateRow(const std::vector<Value>& row) const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

/// A row is a cell per schema column.
using Row = std::vector<Value>;

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_SCHEMA_H_
