#include "storage/predicate.h"

#include <utility>

namespace rdfdb::storage {

namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

class ComparePredicate final : public Predicate {
 public:
  ComparePredicate(size_t column, CompareOp op, Value constant)
      : column_(column), op_(op), constant_(std::move(constant)) {}

  bool Evaluate(const Row& row) const override {
    if (column_ >= row.size()) return false;
    const Value& cell = row[column_];
    if (cell.is_null() || constant_.is_null()) return false;
    int c = cell.Compare(constant_);
    switch (op_) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  }

  std::string ToString() const override {
    return "col[" + std::to_string(column_) + "] " + OpName(op_) + " '" +
           constant_.ToString() + "'";
  }

 private:
  size_t column_;
  CompareOp op_;
  Value constant_;
};

class IsNullPredicate final : public Predicate {
 public:
  explicit IsNullPredicate(size_t column) : column_(column) {}

  bool Evaluate(const Row& row) const override {
    return column_ < row.size() && row[column_].is_null();
  }

  std::string ToString() const override {
    return "col[" + std::to_string(column_) + "] IS NULL";
  }

 private:
  size_t column_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Evaluate(const Row& row) const override {
    for (const auto& c : children_) {
      if (!c->Evaluate(row)) return false;
    }
    return true;
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  bool Evaluate(const Row& row) const override {
    for (const auto& c : children_) {
      if (c->Evaluate(row)) return true;
    }
    return false;
  }

  std::string ToString() const override {
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::vector<PredicatePtr> children_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  bool Evaluate(const Row& row) const override {
    return !child_->Evaluate(row);
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  PredicatePtr child_;
};

class TruePredicate final : public Predicate {
 public:
  bool Evaluate(const Row&) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr Compare(size_t column, CompareOp op, Value constant) {
  return std::make_shared<ComparePredicate>(column, op, std::move(constant));
}

PredicatePtr Eq(size_t column, Value constant) {
  return Compare(column, CompareOp::kEq, std::move(constant));
}

PredicatePtr IsNull(size_t column) {
  return std::make_shared<IsNullPredicate>(column);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<AndPredicate>(std::move(children));
}

PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  return And(std::vector<PredicatePtr>{std::move(a), std::move(b)});
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_shared<OrPredicate>(std::move(children));
}

PredicatePtr Or(PredicatePtr a, PredicatePtr b) {
  return Or(std::vector<PredicatePtr>{std::move(a), std::move(b)});
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_shared<TruePredicate>(); }

}  // namespace rdfdb::storage
