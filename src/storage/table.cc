#include "storage/table.h"

#include <algorithm>

namespace rdfdb::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

size_t Table::RowBytes(const Row& row) {
  size_t n = sizeof(Row);
  for (const Value& v : row) n += v.ApproxBytes();
  return n;
}

Result<RowId> Table::Insert(Row row) {
  RDFDB_RETURN_NOT_OK(schema_.ValidateRow(row));
  RowId row_id = static_cast<RowId>(rows_.size());
  RDFDB_RETURN_NOT_OK(IndexesInsert(row, row_id));
  PartitionInsert(row, row_id);
  data_bytes_ += RowBytes(row);
  rows_.emplace_back(std::move(row));
  ++live_rows_;
  return row_id;
}

Result<std::vector<RowId>> Table::InsertBatch(std::vector<Row> rows) {
  for (const Row& row : rows) {
    RDFDB_RETURN_NOT_OK(schema_.ValidateRow(row));
  }

  // Stage: append every row to the heap first, then wire up indexes and
  // partitions. Index maintenance deferred to a second pass means a
  // mid-batch unique violation can unwind without ever exposing a
  // half-indexed table.
  const size_t first = rows_.size();
  rows_.reserve(first + rows.size());
  std::vector<RowId> ids;
  ids.reserve(rows.size());
  for (Row& row : rows) {
    ids.push_back(static_cast<RowId>(rows_.size()));
    rows_.emplace_back(std::move(row));
  }

  Status st = Status::OK();
  size_t done = 0;
  for (; done < ids.size(); ++done) {
    const Row& row = *rows_[first + done];
    st = IndexesInsert(row, ids[done]);
    if (!st.ok()) break;  // IndexesInsert unwinds its own partial entries
    PartitionInsert(row, ids[done]);
  }
  if (!st.ok()) {
    for (size_t i = 0; i < done; ++i) {
      const Row& row = *rows_[first + i];
      IndexesErase(row, ids[i]);
      PartitionErase(row, ids[i]);
    }
    rows_.resize(first);
    return st;
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    data_bytes_ += RowBytes(*rows_[first + i]);
  }
  live_rows_ += ids.size();
  return ids;
}

Status Table::Update(RowId row_id, Row row) {
  if (row_id < 0 || static_cast<size_t>(row_id) >= rows_.size() ||
      !rows_[row_id].has_value()) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            name_);
  }
  RDFDB_RETURN_NOT_OK(schema_.ValidateRow(row));
  Row& old = *rows_[row_id];
  IndexesErase(old, row_id);
  PartitionErase(old, row_id);
  Status st = IndexesInsert(row, row_id);
  if (!st.ok()) {
    // Roll the old row's entries back so the table stays consistent.
    (void)IndexesInsert(old, row_id);
    PartitionInsert(old, row_id);
    return st;
  }
  PartitionInsert(row, row_id);
  data_bytes_ -= RowBytes(old);
  data_bytes_ += RowBytes(row);
  old = std::move(row);
  return Status::OK();
}

Status Table::UpdateCell(RowId row_id, size_t column, Value value) {
  const Row* current = Get(row_id);
  if (current == nullptr) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            name_);
  }
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("column index out of range");
  }
  Row updated = *current;
  updated[column] = std::move(value);
  return Update(row_id, std::move(updated));
}

Status Table::Delete(RowId row_id) {
  if (row_id < 0 || static_cast<size_t>(row_id) >= rows_.size() ||
      !rows_[row_id].has_value()) {
    return Status::NotFound("row " + std::to_string(row_id) + " in table " +
                            name_);
  }
  Row& old = *rows_[row_id];
  IndexesErase(old, row_id);
  PartitionErase(old, row_id);
  data_bytes_ -= RowBytes(old);
  rows_[row_id].reset();
  --live_rows_;
  return Status::OK();
}

const Row* Table::Get(RowId row_id) const {
  if (row_id < 0 || static_cast<size_t>(row_id) >= rows_.size()) {
    return nullptr;
  }
  const std::optional<Row>& slot = rows_[row_id];
  return slot.has_value() ? &*slot : nullptr;
}

void Table::Scan(const std::function<bool(RowId, const Row&)>& fn) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].has_value()) continue;
    if (!fn(static_cast<RowId>(i), *rows_[i])) return;
  }
}

std::vector<RowId> Table::Select(const Predicate& pred) const {
  std::vector<RowId> out;
  Scan([&](RowId id, const Row& row) {
    if (pred.Evaluate(row)) out.push_back(id);
    return true;
  });
  return out;
}

Status Table::CreateIndex(const std::string& index_name, IndexKind kind,
                          KeyExtractor extractor, bool unique) {
  if (index_by_name_.count(index_name) > 0) {
    return Status::AlreadyExists("index " + index_name + " on table " +
                                 name_);
  }
  auto index = MakeIndex(kind, index_name, std::move(extractor), unique);
  // Backfill existing rows.
  Status backfill = Status::OK();
  Scan([&](RowId id, const Row& row) {
    backfill = index->InsertRow(row, id);
    return backfill.ok();
  });
  if (!backfill.ok()) return backfill;
  index_by_name_.emplace(index_name, indexes_.size());
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Status Table::DropIndex(const std::string& index_name) {
  auto it = index_by_name_.find(index_name);
  if (it == index_by_name_.end()) {
    return Status::NotFound("index " + index_name + " on table " + name_);
  }
  size_t pos = it->second;
  indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(pos));
  index_by_name_.erase(it);
  for (auto& [name, idx] : index_by_name_) {
    if (idx > pos) --idx;
  }
  return Status::OK();
}

const Index* Table::GetIndex(const std::string& index_name) const {
  auto it = index_by_name_.find(index_name);
  return it == index_by_name_.end() ? nullptr : indexes_[it->second].get();
}

Result<std::vector<RowId>> Table::FindByIndex(const std::string& index_name,
                                              const ValueKey& key) const {
  const Index* index = GetIndex(index_name);
  if (index == nullptr) {
    return Status::NotFound("index " + index_name + " on table " + name_);
  }
  return index->Find(key);
}

std::vector<std::string> Table::IndexNames() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& index : indexes_) names.push_back(index->name());
  return names;
}

Status Table::SetPartitionColumn(size_t column) {
  if (live_rows_ > 0) {
    return Status::InvalidArgument(
        "partitioning must be declared on an empty table");
  }
  if (column >= schema_.num_columns()) {
    return Status::InvalidArgument("partition column index out of range");
  }
  partition_column_ = column;
  return Status::OK();
}

size_t Table::ScanPartition(
    const Value& key,
    const std::function<bool(RowId, const Row&)>& fn) const {
  size_t visited = 0;
  if (!partition_column_.has_value()) {
    // Unpartitioned fallback: full scan — every live row is a candidate and
    // the caller's callback filters. This is exactly the access-path
    // difference the partition ablation measures.
    Scan([&](RowId id, const Row& row) {
      ++visited;
      return fn(id, row);
    });
    return visited;
  }
  auto it = partitions_.find(ValueKey{key});
  if (it == partitions_.end()) return 0;
  for (RowId id : it->second) {
    const Row* row = Get(id);
    if (row == nullptr) continue;
    ++visited;
    if (!fn(id, *row)) break;
  }
  return visited;
}

size_t Table::PartitionRowCount(const Value& key) const {
  auto it = partitions_.find(ValueKey{key});
  return it == partitions_.end() ? 0 : it->second.size();
}

size_t Table::ApproxTotalBytes() const {
  size_t n = data_bytes_;
  for (const auto& index : indexes_) n += index->ApproxBytes();
  return n;
}

Status Table::IndexesInsert(const Row& row, RowId row_id) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    Status st = indexes_[i]->InsertRow(row, row_id);
    if (!st.ok()) {
      // Undo the entries already made.
      for (size_t j = 0; j < i; ++j) indexes_[j]->EraseRow(row, row_id);
      return st;
    }
  }
  return Status::OK();
}

void Table::IndexesErase(const Row& row, RowId row_id) {
  for (auto& index : indexes_) index->EraseRow(row, row_id);
}

void Table::PartitionInsert(const Row& row, RowId row_id) {
  if (!partition_column_.has_value()) return;
  partitions_[ValueKey{row[*partition_column_]}].push_back(row_id);
}

void Table::PartitionErase(const Row& row, RowId row_id) {
  if (!partition_column_.has_value()) return;
  auto it = partitions_.find(ValueKey{row[*partition_column_]});
  if (it == partitions_.end()) return;
  auto& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), row_id);
  if (pos != ids.end()) ids.erase(pos);
  if (ids.empty()) partitions_.erase(it);
}

}  // namespace rdfdb::storage
