// Monotonic ID sequences — the engine's equivalent of Oracle sequences,
// used to generate VALUE_ID, LINK_ID and MODEL_ID values.

#ifndef RDFDB_STORAGE_SEQUENCE_H_
#define RDFDB_STORAGE_SEQUENCE_H_

#include <cstdint>
#include <string>

namespace rdfdb::storage {

/// Named monotonic counter. `start` is the first value returned.
class Sequence {
 public:
  explicit Sequence(std::string name, int64_t start = 1)
      : name_(std::move(name)), next_(start) {}

  const std::string& name() const { return name_; }

  /// Return the next value and advance.
  int64_t Next() { return next_++; }

  /// Reserve `n` consecutive values and return the first; the reserved
  /// block is [first, first + n). Equivalent to n calls to Next() — the
  /// bulk loaders use this to assign a batch's ids up front.
  int64_t NextRange(int64_t n) {
    int64_t first = next_;
    next_ += n;
    return first;
  }

  /// Value the next call to Next() would return (for snapshots/tests).
  int64_t Peek() const { return next_; }

  /// Restore the counter (snapshot load).
  void Reset(int64_t next) { next_ = next; }

 private:
  std::string name_;
  int64_t next_;
};

}  // namespace rdfdb::storage

#endif  // RDFDB_STORAGE_SEQUENCE_H_
