// Jena1-style normalized triple store (comparison baseline).
//
// §3.1: "Jena1 utilized a normalized triple store approach. A statement
// table stored references to the subject, predicate, and object, and the
// actual text values for the URIs and the literals were stored in two
// additional tables. ... a three-way join was required for find
// operations."

#ifndef RDFDB_BASELINE_JENA1_STORE_H_
#define RDFDB_BASELINE_JENA1_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "storage/database.h"

namespace rdfdb::baseline {

/// Normalized single-statement-table store.
class Jena1Store {
 public:
  /// Creates the statement/resources/literals tables inside `db` under
  /// schema `name`.
  Jena1Store(storage::Database* db, const std::string& name);

  /// Add one statement (idempotent on exact duplicates).
  Status Add(const rdf::NTriple& triple);

  /// find(s?, p?, o?): unbound positions are nullopt. Every result row
  /// requires resolving three references through the value tables — the
  /// three-way join of §3.1.
  Result<std::vector<rdf::NTriple>> Find(
      const std::optional<rdf::Term>& s, const std::optional<rdf::Term>& p,
      const std::optional<rdf::Term>& o) const;

  size_t statement_count() const;

  /// Approximate bytes across all three tables (data + indexes).
  size_t ApproxBytes() const;

 private:
  Result<int64_t> InternResource(const rdf::Term& term);
  Result<int64_t> InternLiteral(const rdf::Term& term);
  std::optional<int64_t> LookupRef(const rdf::Term& term,
                                   bool* is_literal) const;
  Result<rdf::Term> ResolveRef(int64_t ref, bool is_literal) const;

  storage::Database* db_;
  storage::Table* statements_;
  storage::Table* resources_;
  storage::Table* literals_;
  int64_t next_resource_id_ = 1;
  int64_t next_literal_id_ = 1;
};

}  // namespace rdfdb::baseline

#endif  // RDFDB_BASELINE_JENA1_STORE_H_
