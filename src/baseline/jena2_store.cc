#include "baseline/jena2_store.h"

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfdb::baseline {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// Asserted-statement table columns (text values stored inline, §3.1).
constexpr size_t kSubj = 0;
constexpr size_t kProp = 1;
constexpr size_t kObj = 2;

// Reified-statement property-class table columns.
constexpr size_t kStmtUri = 0;
constexpr size_t kReifSubj = 1;
constexpr size_t kReifProp = 2;
constexpr size_t kReifObj = 3;
constexpr size_t kReifHasType = 4;

Schema AssertedSchema() {
  return Schema({
      ColumnDef{"SUBJ", ValueType::kString, false},
      ColumnDef{"PROP", ValueType::kString, false},
      ColumnDef{"OBJ", ValueType::kString, false},
  });
}

Schema ReifiedSchema() {
  return Schema({
      ColumnDef{"STMT_URI", ValueType::kString, false},
      ColumnDef{"SUBJ", ValueType::kString, true},
      ColumnDef{"PROP", ValueType::kString, true},
      ColumnDef{"OBJ", ValueType::kString, true},
      ColumnDef{"HAS_TYPE", ValueType::kInt64, false},
  });
}

bool RowComplete(const Row& row) {
  return !row[kReifSubj].is_null() && !row[kReifProp].is_null() &&
         !row[kReifObj].is_null() && row[kReifHasType].as_int64() != 0;
}

}  // namespace

Status Jena2Store::CreateModel(
    const std::string& model_name,
    const std::vector<std::vector<std::string>>& property_table_predicates) {
  if (models_.count(model_name) > 0) {
    return Status::AlreadyExists("Jena2 model " + model_name);
  }
  std::string schema_name = "JENA2_" + ToUpper(model_name);
  auto asserted = db_->CreateTable(schema_name, "ASSERTED", AssertedSchema());
  if (!asserted.ok()) return asserted.status();
  auto reified = db_->CreateTable(schema_name, "REIFIED", ReifiedSchema());
  if (!reified.ok()) return reified.status();

  Model model;
  model.asserted = *asserted;
  model.reified = *reified;

  RDFDB_RETURN_NOT_OK(model.asserted->CreateIndex(
      "asserted_s_idx", IndexKind::kHash, KeyExtractor::Columns({kSubj}),
      /*unique=*/false));
  RDFDB_RETURN_NOT_OK(model.asserted->CreateIndex(
      "asserted_p_idx", IndexKind::kHash, KeyExtractor::Columns({kProp}),
      /*unique=*/false));
  RDFDB_RETURN_NOT_OK(model.asserted->CreateIndex(
      "asserted_o_idx", IndexKind::kHash, KeyExtractor::Columns({kObj}),
      /*unique=*/false));
  RDFDB_RETURN_NOT_OK(model.asserted->CreateIndex(
      "asserted_spo_idx", IndexKind::kHash,
      KeyExtractor::Columns({kSubj, kProp, kObj}), /*unique=*/true));
  RDFDB_RETURN_NOT_OK(model.reified->CreateIndex(
      "reified_uri_idx", IndexKind::kHash, KeyExtractor::Columns({kStmtUri}),
      /*unique=*/true));
  RDFDB_RETURN_NOT_OK(model.reified->CreateIndex(
      "reified_spo_idx", IndexKind::kHash,
      KeyExtractor::Columns({kReifSubj, kReifProp, kReifObj}),
      /*unique=*/false));

  for (size_t i = 0; i < property_table_predicates.size(); ++i) {
    model.property_tables.push_back(std::make_unique<PropertyTable>(
        db_, schema_name, "PROP_TABLE_" + std::to_string(i),
        property_table_predicates[i]));
  }
  models_.emplace(model_name, std::move(model));
  return Status::OK();
}

Result<const Jena2Store::Model*> Jena2Store::GetModel(
    const std::string& model_name) const {
  auto it = models_.find(model_name);
  if (it == models_.end()) {
    return Status::NotFound("Jena2 model " + model_name);
  }
  return &it->second;
}

Result<Jena2Store::Model*> Jena2Store::GetModel(
    const std::string& model_name) {
  auto it = models_.find(model_name);
  if (it == models_.end()) {
    return Status::NotFound("Jena2 model " + model_name);
  }
  return &it->second;
}

Status Jena2Store::Add(const std::string& model_name,
                       const rdf::NTriple& triple) {
  RDFDB_ASSIGN_OR_RETURN(Model * model, GetModel(model_name));
  const std::string& p =
      triple.predicate.is_uri() ? triple.predicate.lexical() : "";

  // Reification vocabulary folds into the property-class table.
  bool is_type_statement = p == rdf::kRdfType && triple.object.is_uri() &&
                           triple.object.lexical() == rdf::kRdfStatement;
  if (is_type_statement || p == rdf::kRdfSubject ||
      p == rdf::kRdfPredicate || p == rdf::kRdfObject) {
    std::string stmt_uri = triple.subject.ToNTriples();
    const storage::Index* index = model->reified->GetIndex("reified_uri_idx");
    std::vector<storage::RowId> ids =
        index->Find(ValueKey{Value::String(stmt_uri)});
    Row row(5);
    storage::RowId rid = -1;
    if (ids.empty()) {
      row[kStmtUri] = Value::String(stmt_uri);
      row[kReifSubj] = Value::Null();
      row[kReifProp] = Value::Null();
      row[kReifObj] = Value::Null();
      row[kReifHasType] = Value::Int64(0);
    } else {
      rid = ids.front();
      row = *model->reified->Get(rid);
    }
    if (is_type_statement) {
      row[kReifHasType] = Value::Int64(1);
    } else if (p == rdf::kRdfSubject) {
      row[kReifSubj] = Value::String(triple.object.ToNTriples());
    } else if (p == rdf::kRdfPredicate) {
      row[kReifProp] = Value::String(triple.object.ToNTriples());
    } else {
      row[kReifObj] = Value::String(triple.object.ToNTriples());
    }
    if (rid < 0) {
      auto insert = model->reified->Insert(std::move(row));
      if (!insert.ok()) return insert.status();
      return Status::OK();
    }
    return model->reified->Update(rid, std::move(row));
  }

  // Property-table routing.
  for (const auto& pt : model->property_tables) {
    if (!p.empty() && pt->Handles(p)) {
      return pt->Put(triple.subject, p, triple.object);
    }
  }

  // Plain asserted statement (deduplicated).
  ValueKey key{Value::String(triple.subject.ToNTriples()),
               Value::String(triple.predicate.ToNTriples()),
               Value::String(triple.object.ToNTriples())};
  const storage::Index* spo = model->asserted->GetIndex("asserted_spo_idx");
  if (!spo->Find(key).empty()) return Status::OK();
  auto insert = model->asserted->Insert(
      {key[0], key[1], key[2]});
  if (!insert.ok()) return insert.status();
  return Status::OK();
}

Status Jena2Store::AddReified(const std::string& model_name,
                              const std::string& stmt_uri,
                              const rdf::NTriple& triple) {
  RDFDB_ASSIGN_OR_RETURN(Model * model, GetModel(model_name));
  const storage::Index* index = model->reified->GetIndex("reified_uri_idx");
  if (!index->Find(ValueKey{Value::String(stmt_uri)}).empty()) {
    return Status::AlreadyExists("reified statement " + stmt_uri);
  }
  auto insert = model->reified->Insert(
      {Value::String(stmt_uri), Value::String(triple.subject.ToNTriples()),
       Value::String(triple.predicate.ToNTriples()),
       Value::String(triple.object.ToNTriples()), Value::Int64(1)});
  if (!insert.ok()) return insert.status();
  return Status::OK();
}

Result<std::vector<rdf::NTriple>> Jena2Store::ListStatements(
    const std::string& model_name, const std::optional<rdf::Term>& s,
    const std::optional<rdf::Term>& p,
    const std::optional<rdf::Term>& o) const {
  RDFDB_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  std::optional<std::string> s_key, p_key, o_key;
  if (s.has_value()) s_key = s->ToNTriples();
  if (p.has_value()) p_key = p->ToNTriples();
  if (o.has_value()) o_key = o->ToNTriples();

  std::vector<storage::RowId> candidates;
  if (s_key.has_value()) {
    candidates = model->asserted->GetIndex("asserted_s_idx")
                     ->Find(ValueKey{Value::String(*s_key)});
  } else if (o_key.has_value()) {
    candidates = model->asserted->GetIndex("asserted_o_idx")
                     ->Find(ValueKey{Value::String(*o_key)});
  } else if (p_key.has_value()) {
    candidates = model->asserted->GetIndex("asserted_p_idx")
                     ->Find(ValueKey{Value::String(*p_key)});
  } else {
    model->asserted->Scan([&](storage::RowId id, const Row&) {
      candidates.push_back(id);
      return true;
    });
  }

  std::vector<rdf::NTriple> out;
  for (storage::RowId rid : candidates) {
    const Row& row = *model->asserted->Get(rid);
    if (s_key.has_value() && row[kSubj].as_string() != *s_key) continue;
    if (p_key.has_value() && row[kProp].as_string() != *p_key) continue;
    if (o_key.has_value() && row[kObj].as_string() != *o_key) continue;
    rdf::NTriple triple;
    RDFDB_ASSIGN_OR_RETURN(triple.subject,
                           rdf::ParseApiTerm(row[kSubj].as_string()));
    RDFDB_ASSIGN_OR_RETURN(triple.predicate,
                           rdf::ParseApiTerm(row[kProp].as_string()));
    RDFDB_ASSIGN_OR_RETURN(triple.object,
                           rdf::ParseApiTerm(row[kObj].as_string()));
    out.push_back(std::move(triple));
  }
  return out;
}

Result<bool> Jena2Store::IsReified(const std::string& model_name,
                                   const rdf::NTriple& triple) const {
  RDFDB_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  const storage::Index* index = model->reified->GetIndex("reified_spo_idx");
  ValueKey key{Value::String(triple.subject.ToNTriples()),
               Value::String(triple.predicate.ToNTriples()),
               Value::String(triple.object.ToNTriples())};
  for (storage::RowId rid : index->Find(key)) {
    if (RowComplete(*model->reified->Get(rid))) return true;
  }
  return false;
}

Result<size_t> Jena2Store::StatementCount(
    const std::string& model_name) const {
  RDFDB_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  return model->asserted->row_count();
}

Result<size_t> Jena2Store::ReifiedCount(const std::string& model_name) const {
  RDFDB_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  size_t n = 0;
  model->reified->Scan([&](storage::RowId, const Row& row) {
    if (RowComplete(row)) ++n;
    return true;
  });
  return n;
}

Result<size_t> Jena2Store::ApproxBytes(const std::string& model_name) const {
  RDFDB_ASSIGN_OR_RETURN(const Model* model, GetModel(model_name));
  size_t n = model->asserted->ApproxTotalBytes() +
             model->reified->ApproxTotalBytes();
  for (const auto& pt : model->property_tables) n += pt->ApproxBytes();
  return n;
}

const std::vector<std::unique_ptr<PropertyTable>>&
Jena2Store::property_tables(const std::string& model_name) const {
  static const std::vector<std::unique_ptr<PropertyTable>> kEmpty;
  auto it = models_.find(model_name);
  return it == models_.end() ? kEmpty : it->second.property_tables;
}

}  // namespace rdfdb::baseline
