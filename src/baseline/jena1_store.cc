#include "baseline/jena1_store.h"

namespace rdfdb::baseline {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// statements columns.
constexpr size_t kSubjRef = 0;
constexpr size_t kPredRef = 1;
constexpr size_t kObjRef = 2;
constexpr size_t kObjIsLiteral = 3;

// resources columns: (ID, ENCODED) where ENCODED is the N-Triples token.
// literals columns: (ID, ENCODED).
constexpr size_t kValId = 0;
constexpr size_t kValEncoded = 1;

Schema StatementSchema() {
  return Schema({
      ColumnDef{"SUBJ_REF", ValueType::kInt64, false},
      ColumnDef{"PRED_REF", ValueType::kInt64, false},
      ColumnDef{"OBJ_REF", ValueType::kInt64, false},
      ColumnDef{"OBJ_IS_LITERAL", ValueType::kInt64, false},
  });
}

Schema ValueTableSchema() {
  return Schema({
      ColumnDef{"ID", ValueType::kInt64, false},
      ColumnDef{"ENCODED", ValueType::kString, false},
  });
}

}  // namespace

Jena1Store::Jena1Store(storage::Database* db, const std::string& name)
    : db_(db) {
  statements_ = *db_->CreateTable(name, "STATEMENTS", StatementSchema());
  resources_ = *db_->CreateTable(name, "RESOURCES", ValueTableSchema());
  literals_ = *db_->CreateTable(name, "LITERALS", ValueTableSchema());

  (void)statements_->CreateIndex("stmt_spo_idx", IndexKind::kHash,
                                 KeyExtractor::Columns({kSubjRef, kPredRef,
                                                        kObjRef,
                                                        kObjIsLiteral}),
                                 /*unique=*/true);
  (void)statements_->CreateIndex("stmt_s_idx", IndexKind::kHash,
                                 KeyExtractor::Columns({kSubjRef}),
                                 /*unique=*/false);
  (void)statements_->CreateIndex("stmt_p_idx", IndexKind::kHash,
                                 KeyExtractor::Columns({kPredRef}),
                                 /*unique=*/false);
  (void)statements_->CreateIndex("stmt_o_idx", IndexKind::kHash,
                                 KeyExtractor::Columns({kObjRef}),
                                 /*unique=*/false);
  for (storage::Table* table : {resources_, literals_}) {
    (void)table->CreateIndex("val_id_idx", IndexKind::kHash,
                             KeyExtractor::Columns({kValId}),
                             /*unique=*/true);
    (void)table->CreateIndex("val_text_idx", IndexKind::kHash,
                             KeyExtractor::Columns({kValEncoded}),
                             /*unique=*/true);
  }
}

Result<int64_t> Jena1Store::InternResource(const rdf::Term& term) {
  std::string encoded = term.ToNTriples();
  const storage::Index* index = resources_->GetIndex("val_text_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(encoded)});
  if (!ids.empty()) {
    return resources_->Get(ids.front())->at(kValId).as_int64();
  }
  int64_t id = next_resource_id_++;
  auto insert = resources_->Insert(
      {Value::Int64(id), Value::String(std::move(encoded))});
  if (!insert.ok()) return insert.status();
  return id;
}

Result<int64_t> Jena1Store::InternLiteral(const rdf::Term& term) {
  std::string encoded = term.ToNTriples();
  const storage::Index* index = literals_->GetIndex("val_text_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(encoded)});
  if (!ids.empty()) {
    return literals_->Get(ids.front())->at(kValId).as_int64();
  }
  int64_t id = next_literal_id_++;
  auto insert = literals_->Insert(
      {Value::Int64(id), Value::String(std::move(encoded))});
  if (!insert.ok()) return insert.status();
  return id;
}

std::optional<int64_t> Jena1Store::LookupRef(const rdf::Term& term,
                                             bool* is_literal) const {
  *is_literal = term.is_literal();
  const storage::Table* table = *is_literal ? literals_ : resources_;
  const storage::Index* index = table->GetIndex("val_text_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(term.ToNTriples())});
  if (ids.empty()) return std::nullopt;
  return table->Get(ids.front())->at(kValId).as_int64();
}

Result<rdf::Term> Jena1Store::ResolveRef(int64_t ref, bool is_literal) const {
  const storage::Table* table = is_literal ? literals_ : resources_;
  const storage::Index* index = table->GetIndex("val_id_idx");
  std::vector<storage::RowId> ids = index->Find(ValueKey{Value::Int64(ref)});
  if (ids.empty()) {
    return Status::Corruption("dangling reference " + std::to_string(ref));
  }
  const std::string& encoded = table->Get(ids.front())->at(kValEncoded)
                                   .as_string();
  return rdf::ParseApiTerm(encoded);
}

Status Jena1Store::Add(const rdf::NTriple& triple) {
  RDFDB_ASSIGN_OR_RETURN(int64_t s_ref, InternResource(triple.subject));
  RDFDB_ASSIGN_OR_RETURN(int64_t p_ref, InternResource(triple.predicate));
  int64_t o_ref;
  bool o_literal = triple.object.is_literal();
  if (o_literal) {
    RDFDB_ASSIGN_OR_RETURN(o_ref, InternLiteral(triple.object));
  } else {
    RDFDB_ASSIGN_OR_RETURN(o_ref, InternResource(triple.object));
  }
  const storage::Index* spo = statements_->GetIndex("stmt_spo_idx");
  ValueKey key{Value::Int64(s_ref), Value::Int64(p_ref), Value::Int64(o_ref),
               Value::Int64(o_literal ? 1 : 0)};
  if (!spo->Find(key).empty()) return Status::OK();  // duplicate statement
  auto insert = statements_->Insert({Value::Int64(s_ref),
                                     Value::Int64(p_ref),
                                     Value::Int64(o_ref),
                                     Value::Int64(o_literal ? 1 : 0)});
  if (!insert.ok()) return insert.status();
  return Status::OK();
}

Result<std::vector<rdf::NTriple>> Jena1Store::Find(
    const std::optional<rdf::Term>& s, const std::optional<rdf::Term>& p,
    const std::optional<rdf::Term>& o) const {
  // Join step 1: constants -> references.
  std::optional<int64_t> s_ref, p_ref, o_ref;
  std::optional<int64_t> o_literal;
  bool lit = false;
  if (s.has_value()) {
    s_ref = LookupRef(*s, &lit);
    if (!s_ref.has_value()) return std::vector<rdf::NTriple>{};
  }
  if (p.has_value()) {
    p_ref = LookupRef(*p, &lit);
    if (!p_ref.has_value()) return std::vector<rdf::NTriple>{};
  }
  if (o.has_value()) {
    o_ref = LookupRef(*o, &lit);
    if (!o_ref.has_value()) return std::vector<rdf::NTriple>{};
    o_literal = lit ? 1 : 0;
  }

  // Join step 2: statement rows through the best index.
  std::vector<storage::RowId> candidates;
  if (s_ref.has_value()) {
    candidates = statements_->GetIndex("stmt_s_idx")
                     ->Find(ValueKey{Value::Int64(*s_ref)});
  } else if (o_ref.has_value()) {
    candidates = statements_->GetIndex("stmt_o_idx")
                     ->Find(ValueKey{Value::Int64(*o_ref)});
  } else if (p_ref.has_value()) {
    candidates = statements_->GetIndex("stmt_p_idx")
                     ->Find(ValueKey{Value::Int64(*p_ref)});
  } else {
    statements_->Scan([&](storage::RowId id, const Row&) {
      candidates.push_back(id);
      return true;
    });
  }

  // Join step 3: resolve each surviving row's three references back to
  // text.
  std::vector<rdf::NTriple> out;
  for (storage::RowId rid : candidates) {
    const Row& row = *statements_->Get(rid);
    if (s_ref.has_value() && row[kSubjRef].as_int64() != *s_ref) continue;
    if (p_ref.has_value() && row[kPredRef].as_int64() != *p_ref) continue;
    if (o_ref.has_value() &&
        (row[kObjRef].as_int64() != *o_ref ||
         row[kObjIsLiteral].as_int64() != *o_literal)) {
      continue;
    }
    rdf::NTriple triple;
    RDFDB_ASSIGN_OR_RETURN(
        triple.subject, ResolveRef(row[kSubjRef].as_int64(), false));
    RDFDB_ASSIGN_OR_RETURN(
        triple.predicate, ResolveRef(row[kPredRef].as_int64(), false));
    RDFDB_ASSIGN_OR_RETURN(
        triple.object,
        ResolveRef(row[kObjRef].as_int64(),
                   row[kObjIsLiteral].as_int64() != 0));
    out.push_back(std::move(triple));
  }
  return out;
}

size_t Jena1Store::statement_count() const {
  return statements_->row_count();
}

size_t Jena1Store::ApproxBytes() const {
  return statements_->ApproxTotalBytes() + resources_->ApproxTotalBytes() +
         literals_->ApproxTotalBytes();
}

}  // namespace rdfdb::baseline
