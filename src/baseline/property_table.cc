#include "baseline/property_table.h"

namespace rdfdb::baseline {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

constexpr size_t kSubject = 0;  // predicate columns follow

}  // namespace

PropertyTable::PropertyTable(storage::Database* db, const std::string& schema,
                             const std::string& table_name,
                             std::vector<std::string> predicates)
    : predicates_(std::move(predicates)) {
  std::vector<ColumnDef> columns;
  columns.push_back(ColumnDef{"SUBJECT", ValueType::kString, false});
  for (size_t i = 0; i < predicates_.size(); ++i) {
    columns.push_back(
        ColumnDef{"P" + std::to_string(i), ValueType::kString, true});
  }
  table_ = *db->CreateTable(schema, table_name, Schema(std::move(columns)));
  (void)table_->CreateIndex("prop_subj_idx", IndexKind::kHash,
                            KeyExtractor::Columns({kSubject}),
                            /*unique=*/true);
}

int PropertyTable::ColumnFor(const std::string& predicate_uri) const {
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i] == predicate_uri) return static_cast<int>(i + 1);
  }
  return -1;
}

bool PropertyTable::Handles(const std::string& predicate_uri) const {
  return ColumnFor(predicate_uri) >= 0;
}

Status PropertyTable::Put(const rdf::Term& subject,
                          const std::string& predicate_uri,
                          const rdf::Term& value) {
  int col = ColumnFor(predicate_uri);
  if (col < 0) {
    return Status::InvalidArgument("predicate not in property table: " +
                                   predicate_uri);
  }
  std::string subject_key = subject.ToNTriples();
  const storage::Index* index = table_->GetIndex("prop_subj_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(subject_key)});
  if (ids.empty()) {
    Row row(table_->schema().num_columns(), Value::Null());
    row[kSubject] = Value::String(subject_key);
    row[static_cast<size_t>(col)] = Value::String(value.ToNTriples());
    auto insert = table_->Insert(std::move(row));
    if (!insert.ok()) return insert.status();
    return Status::OK();
  }
  return table_->UpdateCell(ids.front(), static_cast<size_t>(col),
                            Value::String(value.ToNTriples()));
}

Result<std::optional<rdf::Term>> PropertyTable::Get(
    const rdf::Term& subject, const std::string& predicate_uri) const {
  int col = ColumnFor(predicate_uri);
  if (col < 0) {
    return Status::InvalidArgument("predicate not in property table: " +
                                   predicate_uri);
  }
  const storage::Index* index = table_->GetIndex("prop_subj_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(subject.ToNTriples())});
  if (ids.empty()) return std::optional<rdf::Term>{};
  const Value& cell = table_->Get(ids.front())->at(static_cast<size_t>(col));
  if (cell.is_null()) return std::optional<rdf::Term>{};
  RDFDB_ASSIGN_OR_RETURN(rdf::Term term, rdf::ParseApiTerm(cell.as_string()));
  return std::optional<rdf::Term>{std::move(term)};
}

Result<std::unordered_map<std::string, rdf::Term>> PropertyTable::GetRow(
    const rdf::Term& subject) const {
  std::unordered_map<std::string, rdf::Term> out;
  const storage::Index* index = table_->GetIndex("prop_subj_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(subject.ToNTriples())});
  if (ids.empty()) return out;
  const Row& row = *table_->Get(ids.front());
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const Value& cell = row[i + 1];
    if (cell.is_null()) continue;
    RDFDB_ASSIGN_OR_RETURN(rdf::Term term,
                           rdf::ParseApiTerm(cell.as_string()));
    out.emplace(predicates_[i], std::move(term));
  }
  return out;
}

}  // namespace rdfdb::baseline
