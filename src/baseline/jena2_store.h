// Jena2-style denormalized multi-model store (comparison baseline).
//
// §3.1: "Jena2 utilizes a denormalized, multi-model triple store
// approach. Models are stored in separate tables, and each model stores
// asserted statements in one table and reified statements in another.
// The asserted statement table stores the actual text values for the
// triples in subject, predicate, object columns. ... Reified statements
// are stored in a property-class table that has columns StmtURI, rdf:
// subject, rdf:predicate, rdf:object, and rdf:type. A single row with
// all attributes present represents a reified triple."
//
// This is the system Experiments II and III compare against.

#ifndef RDFDB_BASELINE_JENA2_STORE_H_
#define RDFDB_BASELINE_JENA2_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baseline/property_table.h"
#include "common/result.h"
#include "common/status.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "storage/database.h"

namespace rdfdb::baseline {

/// One Jena2 model's pair of tables (+ optional property tables).
class Jena2Store {
 public:
  explicit Jena2Store(storage::Database* db) : db_(db) {}

  /// Create a model: one asserted-statement table and one
  /// reified-statement table, with subject/predicate/object indexes.
  /// `property_table_predicates` optionally configures property tables
  /// on graph creation (one table per inner vector).
  Status CreateModel(
      const std::string& model_name,
      const std::vector<std::vector<std::string>>&
          property_table_predicates = {});

  /// model.add(stmt). Reification-vocabulary statements (rdf:subject /
  /// rdf:predicate / rdf:object / rdf:type=rdf:Statement) are folded into
  /// the reified-statement table row for their StmtURI, as Jena2 does;
  /// statements whose predicate is configured in a property table go
  /// there; everything else lands in the asserted-statement table.
  Status Add(const std::string& model_name, const rdf::NTriple& triple);

  /// createReifiedStatement(uri, stmt): one complete row in the
  /// property-class table.
  Status AddReified(const std::string& model_name,
                    const std::string& stmt_uri, const rdf::NTriple& triple);

  /// listStatements(s?, p?, o?) over the asserted table.
  Result<std::vector<rdf::NTriple>> ListStatements(
      const std::string& model_name, const std::optional<rdf::Term>& s,
      const std::optional<rdf::Term>& p,
      const std::optional<rdf::Term>& o) const;

  /// isReified(stmt): single-row lookup on the (subject, predicate,
  /// object) index of the reified table, requiring a complete row —
  /// Jena2's optimized reification path.
  Result<bool> IsReified(const std::string& model_name,
                         const rdf::NTriple& triple) const;

  /// Statement count of the asserted table.
  Result<size_t> StatementCount(const std::string& model_name) const;

  /// Complete rows in the reified table.
  Result<size_t> ReifiedCount(const std::string& model_name) const;

  /// Approximate bytes of one model's tables (data + indexes).
  Result<size_t> ApproxBytes(const std::string& model_name) const;

  /// Property tables of a model (empty if none configured).
  const std::vector<std::unique_ptr<PropertyTable>>& property_tables(
      const std::string& model_name) const;

 private:
  struct Model {
    storage::Table* asserted = nullptr;
    storage::Table* reified = nullptr;
    std::vector<std::unique_ptr<PropertyTable>> property_tables;
  };

  Result<const Model*> GetModel(const std::string& model_name) const;
  Result<Model*> GetModel(const std::string& model_name);

  storage::Database* db_;
  std::unordered_map<std::string, Model> models_;
};

}  // namespace rdfdb::baseline

#endif  // RDFDB_BASELINE_JENA2_STORE_H_
