// Jena2 property tables (comparison baseline, §3.1).
//
// "Jena2 can be configured to include property tables on graph creation.
// These tables store subject-value pairs for specified predicates ... a
// single row stores the predicate values for a common subject. Property
// tables ... provide modest storage reduction, since predicate URIs are
// not stored. They attempt to cluster properties that are commonly
// accessed together."

#ifndef RDFDB_BASELINE_PROPERTY_TABLE_H_
#define RDFDB_BASELINE_PROPERTY_TABLE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"
#include "storage/database.h"

namespace rdfdb::baseline {

/// One property table: a subject column plus one column per configured
/// predicate. The predicate URIs live in the schema, not in rows.
class PropertyTable {
 public:
  /// `predicates` are the full predicate URIs given a column each.
  PropertyTable(storage::Database* db, const std::string& schema,
                const std::string& table_name,
                std::vector<std::string> predicates);

  /// True if this table is configured to absorb `predicate_uri`.
  bool Handles(const std::string& predicate_uri) const;

  /// Set the value of (subject, predicate); creates the subject row on
  /// first use. Each (subject, predicate) holds one value — a second Put
  /// overwrites, matching single-valued property-table semantics.
  Status Put(const rdf::Term& subject, const std::string& predicate_uri,
             const rdf::Term& value);

  /// Value at (subject, predicate), or nullopt.
  Result<std::optional<rdf::Term>> Get(
      const rdf::Term& subject, const std::string& predicate_uri) const;

  /// All values of a subject's row, keyed by predicate URI.
  Result<std::unordered_map<std::string, rdf::Term>> GetRow(
      const rdf::Term& subject) const;

  /// Number of subject rows.
  size_t row_count() const { return table_->row_count(); }

  /// Approximate bytes (data + indexes).
  size_t ApproxBytes() const { return table_->ApproxTotalBytes(); }

  const std::vector<std::string>& predicates() const { return predicates_; }

 private:
  int ColumnFor(const std::string& predicate_uri) const;

  storage::Table* table_;
  std::vector<std::string> predicates_;
};

}  // namespace rdfdb::baseline

#endif  // RDFDB_BASELINE_PROPERTY_TABLE_H_
