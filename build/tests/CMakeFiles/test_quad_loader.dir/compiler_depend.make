# Empty compiler generated dependencies file for test_quad_loader.
# This may be replaced when dependencies are built.
