file(REMOVE_RECURSE
  "CMakeFiles/test_quad_loader.dir/test_quad_loader.cc.o"
  "CMakeFiles/test_quad_loader.dir/test_quad_loader.cc.o.d"
  "test_quad_loader"
  "test_quad_loader.pdb"
  "test_quad_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quad_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
