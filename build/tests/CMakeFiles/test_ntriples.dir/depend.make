# Empty dependencies file for test_ntriples.
# This may be replaced when dependencies are built.
