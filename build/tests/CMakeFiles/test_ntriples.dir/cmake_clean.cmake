file(REMOVE_RECURSE
  "CMakeFiles/test_ntriples.dir/test_ntriples.cc.o"
  "CMakeFiles/test_ntriples.dir/test_ntriples.cc.o.d"
  "test_ntriples"
  "test_ntriples.pdb"
  "test_ntriples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntriples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
