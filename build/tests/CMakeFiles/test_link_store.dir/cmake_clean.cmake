file(REMOVE_RECURSE
  "CMakeFiles/test_link_store.dir/test_link_store.cc.o"
  "CMakeFiles/test_link_store.dir/test_link_store.cc.o.d"
  "test_link_store"
  "test_link_store.pdb"
  "test_link_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
