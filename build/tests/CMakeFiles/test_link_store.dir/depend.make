# Empty dependencies file for test_link_store.
# This may be replaced when dependencies are built.
