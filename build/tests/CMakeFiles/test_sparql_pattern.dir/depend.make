# Empty dependencies file for test_sparql_pattern.
# This may be replaced when dependencies are built.
