file(REMOVE_RECURSE
  "CMakeFiles/test_sparql_pattern.dir/test_sparql_pattern.cc.o"
  "CMakeFiles/test_sparql_pattern.dir/test_sparql_pattern.cc.o.d"
  "test_sparql_pattern"
  "test_sparql_pattern.pdb"
  "test_sparql_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparql_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
