file(REMOVE_RECURSE
  "CMakeFiles/test_container.dir/test_container.cc.o"
  "CMakeFiles/test_container.dir/test_container.cc.o.d"
  "test_container"
  "test_container.pdb"
  "test_container[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
