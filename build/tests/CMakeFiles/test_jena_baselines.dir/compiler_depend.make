# Empty compiler generated dependencies file for test_jena_baselines.
# This may be replaced when dependencies are built.
