file(REMOVE_RECURSE
  "CMakeFiles/test_jena_baselines.dir/test_jena_baselines.cc.o"
  "CMakeFiles/test_jena_baselines.dir/test_jena_baselines.cc.o.d"
  "test_jena_baselines"
  "test_jena_baselines.pdb"
  "test_jena_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jena_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
