file(REMOVE_RECURSE
  "CMakeFiles/test_rulebase.dir/test_rulebase.cc.o"
  "CMakeFiles/test_rulebase.dir/test_rulebase.cc.o.d"
  "test_rulebase"
  "test_rulebase.pdb"
  "test_rulebase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rulebase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
