# Empty compiler generated dependencies file for test_rulebase.
# This may be replaced when dependencies are built.
