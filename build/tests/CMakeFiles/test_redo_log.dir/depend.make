# Empty dependencies file for test_redo_log.
# This may be replaced when dependencies are built.
