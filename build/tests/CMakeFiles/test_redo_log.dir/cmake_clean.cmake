file(REMOVE_RECURSE
  "CMakeFiles/test_redo_log.dir/test_redo_log.cc.o"
  "CMakeFiles/test_redo_log.dir/test_redo_log.cc.o.d"
  "test_redo_log"
  "test_redo_log.pdb"
  "test_redo_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redo_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
