# Empty compiler generated dependencies file for test_rdf_store.
# This may be replaced when dependencies are built.
