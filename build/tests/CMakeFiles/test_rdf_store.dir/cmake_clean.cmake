file(REMOVE_RECURSE
  "CMakeFiles/test_rdf_store.dir/test_rdf_store.cc.o"
  "CMakeFiles/test_rdf_store.dir/test_rdf_store.cc.o.d"
  "test_rdf_store"
  "test_rdf_store.pdb"
  "test_rdf_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdf_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
