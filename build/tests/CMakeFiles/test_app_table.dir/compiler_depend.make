# Empty compiler generated dependencies file for test_app_table.
# This may be replaced when dependencies are built.
