file(REMOVE_RECURSE
  "CMakeFiles/test_app_table.dir/test_app_table.cc.o"
  "CMakeFiles/test_app_table.dir/test_app_table.cc.o.d"
  "test_app_table"
  "test_app_table.pdb"
  "test_app_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
