file(REMOVE_RECURSE
  "CMakeFiles/test_canonical.dir/test_canonical.cc.o"
  "CMakeFiles/test_canonical.dir/test_canonical.cc.o.d"
  "test_canonical"
  "test_canonical.pdb"
  "test_canonical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canonical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
