
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dburi.cc" "tests/CMakeFiles/test_dburi.dir/test_dburi.cc.o" "gcc" "tests/CMakeFiles/test_dburi.dir/test_dburi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfdb_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_ndm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_dburi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
