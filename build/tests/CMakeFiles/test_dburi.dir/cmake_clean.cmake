file(REMOVE_RECURSE
  "CMakeFiles/test_dburi.dir/test_dburi.cc.o"
  "CMakeFiles/test_dburi.dir/test_dburi.cc.o.d"
  "test_dburi"
  "test_dburi.pdb"
  "test_dburi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dburi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
