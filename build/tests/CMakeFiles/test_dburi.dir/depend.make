# Empty dependencies file for test_dburi.
# This may be replaced when dependencies are built.
