file(REMOVE_RECURSE
  "CMakeFiles/test_rules_index.dir/test_rules_index.cc.o"
  "CMakeFiles/test_rules_index.dir/test_rules_index.cc.o.d"
  "test_rules_index"
  "test_rules_index.pdb"
  "test_rules_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
