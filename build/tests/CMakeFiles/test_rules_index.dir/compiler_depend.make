# Empty compiler generated dependencies file for test_rules_index.
# This may be replaced when dependencies are built.
