file(REMOVE_RECURSE
  "CMakeFiles/test_uniprot_gen.dir/test_uniprot_gen.cc.o"
  "CMakeFiles/test_uniprot_gen.dir/test_uniprot_gen.cc.o.d"
  "test_uniprot_gen"
  "test_uniprot_gen.pdb"
  "test_uniprot_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniprot_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
