# Empty compiler generated dependencies file for test_uniprot_gen.
# This may be replaced when dependencies are built.
