# Empty compiler generated dependencies file for test_concurrent_store.
# This may be replaced when dependencies are built.
