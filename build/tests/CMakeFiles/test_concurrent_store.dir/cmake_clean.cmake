file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_store.dir/test_concurrent_store.cc.o"
  "CMakeFiles/test_concurrent_store.dir/test_concurrent_store.cc.o.d"
  "test_concurrent_store"
  "test_concurrent_store.pdb"
  "test_concurrent_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
