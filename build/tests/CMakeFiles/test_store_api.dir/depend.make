# Empty dependencies file for test_store_api.
# This may be replaced when dependencies are built.
