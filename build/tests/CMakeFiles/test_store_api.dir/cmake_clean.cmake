file(REMOVE_RECURSE
  "CMakeFiles/test_store_api.dir/test_store_api.cc.o"
  "CMakeFiles/test_store_api.dir/test_store_api.cc.o.d"
  "test_store_api"
  "test_store_api.pdb"
  "test_store_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
