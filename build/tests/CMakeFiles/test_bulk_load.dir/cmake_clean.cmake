file(REMOVE_RECURSE
  "CMakeFiles/test_bulk_load.dir/test_bulk_load.cc.o"
  "CMakeFiles/test_bulk_load.dir/test_bulk_load.cc.o.d"
  "test_bulk_load"
  "test_bulk_load.pdb"
  "test_bulk_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
