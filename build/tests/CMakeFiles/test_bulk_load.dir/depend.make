# Empty dependencies file for test_bulk_load.
# This may be replaced when dependencies are built.
