# Empty dependencies file for test_value_store.
# This may be replaced when dependencies are built.
