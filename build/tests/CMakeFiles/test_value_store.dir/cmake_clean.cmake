file(REMOVE_RECURSE
  "CMakeFiles/test_value_store.dir/test_value_store.cc.o"
  "CMakeFiles/test_value_store.dir/test_value_store.cc.o.d"
  "test_value_store"
  "test_value_store.pdb"
  "test_value_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
