# Empty dependencies file for rdf_shell.
# This may be replaced when dependencies are built.
