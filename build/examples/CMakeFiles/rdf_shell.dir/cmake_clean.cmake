file(REMOVE_RECURSE
  "CMakeFiles/rdf_shell.dir/rdf_shell.cpp.o"
  "CMakeFiles/rdf_shell.dir/rdf_shell.cpp.o.d"
  "rdf_shell"
  "rdf_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
