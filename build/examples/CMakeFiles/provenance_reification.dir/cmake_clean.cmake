file(REMOVE_RECURSE
  "CMakeFiles/provenance_reification.dir/provenance_reification.cpp.o"
  "CMakeFiles/provenance_reification.dir/provenance_reification.cpp.o.d"
  "provenance_reification"
  "provenance_reification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_reification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
