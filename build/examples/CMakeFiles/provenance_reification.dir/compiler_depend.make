# Empty compiler generated dependencies file for provenance_reification.
# This may be replaced when dependencies are built.
