file(REMOVE_RECURSE
  "CMakeFiles/uniprot_catalog.dir/uniprot_catalog.cpp.o"
  "CMakeFiles/uniprot_catalog.dir/uniprot_catalog.cpp.o.d"
  "uniprot_catalog"
  "uniprot_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniprot_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
