# Empty compiler generated dependencies file for uniprot_catalog.
# This may be replaced when dependencies are built.
