file(REMOVE_RECURSE
  "CMakeFiles/intelligence_community.dir/intelligence_community.cpp.o"
  "CMakeFiles/intelligence_community.dir/intelligence_community.cpp.o.d"
  "intelligence_community"
  "intelligence_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intelligence_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
