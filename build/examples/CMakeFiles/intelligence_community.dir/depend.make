# Empty dependencies file for intelligence_community.
# This may be replaced when dependencies are built.
