file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_rdf.dir/rdf/app_table.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/app_table.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/bulk_load.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/bulk_load.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/canonical.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/canonical.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/container.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/container.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/link_store.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/link_store.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/model_store.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/model_store.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/quad_loader.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/quad_loader.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/rdf_store.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/rdf_store.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/redo_log.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/redo_log.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/reification.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/reification.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/term.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/term.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/triple.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/triple.cc.o.d"
  "CMakeFiles/rdfdb_rdf.dir/rdf/value_store.cc.o"
  "CMakeFiles/rdfdb_rdf.dir/rdf/value_store.cc.o.d"
  "librdfdb_rdf.a"
  "librdfdb_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
