file(REMOVE_RECURSE
  "librdfdb_rdf.a"
)
