# Empty dependencies file for rdfdb_rdf.
# This may be replaced when dependencies are built.
