
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/app_table.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/app_table.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/app_table.cc.o.d"
  "/root/repo/src/rdf/bulk_load.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/bulk_load.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/bulk_load.cc.o.d"
  "/root/repo/src/rdf/canonical.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/canonical.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/canonical.cc.o.d"
  "/root/repo/src/rdf/container.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/container.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/container.cc.o.d"
  "/root/repo/src/rdf/link_store.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/link_store.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/link_store.cc.o.d"
  "/root/repo/src/rdf/model_store.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/model_store.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/model_store.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/quad_loader.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/quad_loader.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/quad_loader.cc.o.d"
  "/root/repo/src/rdf/rdf_store.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/rdf_store.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/rdf_store.cc.o.d"
  "/root/repo/src/rdf/redo_log.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/redo_log.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/redo_log.cc.o.d"
  "/root/repo/src/rdf/reification.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/reification.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/reification.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/triple.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/triple.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/triple.cc.o.d"
  "/root/repo/src/rdf/value_store.cc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/value_store.cc.o" "gcc" "src/CMakeFiles/rdfdb_rdf.dir/rdf/value_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_ndm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_dburi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
