file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_baseline.dir/baseline/jena1_store.cc.o"
  "CMakeFiles/rdfdb_baseline.dir/baseline/jena1_store.cc.o.d"
  "CMakeFiles/rdfdb_baseline.dir/baseline/jena2_store.cc.o"
  "CMakeFiles/rdfdb_baseline.dir/baseline/jena2_store.cc.o.d"
  "CMakeFiles/rdfdb_baseline.dir/baseline/property_table.cc.o"
  "CMakeFiles/rdfdb_baseline.dir/baseline/property_table.cc.o.d"
  "librdfdb_baseline.a"
  "librdfdb_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
