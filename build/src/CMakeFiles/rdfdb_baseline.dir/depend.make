# Empty dependencies file for rdfdb_baseline.
# This may be replaced when dependencies are built.
