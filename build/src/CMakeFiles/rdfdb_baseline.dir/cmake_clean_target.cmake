file(REMOVE_RECURSE
  "librdfdb_baseline.a"
)
