# Empty dependencies file for rdfdb_query.
# This may be replaced when dependencies are built.
