file(REMOVE_RECURSE
  "librdfdb_query.a"
)
