
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/filter.cc" "src/CMakeFiles/rdfdb_query.dir/query/filter.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/filter.cc.o.d"
  "/root/repo/src/query/inference.cc" "src/CMakeFiles/rdfdb_query.dir/query/inference.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/inference.cc.o.d"
  "/root/repo/src/query/match.cc" "src/CMakeFiles/rdfdb_query.dir/query/match.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/match.cc.o.d"
  "/root/repo/src/query/rulebase.cc" "src/CMakeFiles/rdfdb_query.dir/query/rulebase.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/rulebase.cc.o.d"
  "/root/repo/src/query/rules_index.cc" "src/CMakeFiles/rdfdb_query.dir/query/rules_index.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/rules_index.cc.o.d"
  "/root/repo/src/query/sparql_pattern.cc" "src/CMakeFiles/rdfdb_query.dir/query/sparql_pattern.cc.o" "gcc" "src/CMakeFiles/rdfdb_query.dir/query/sparql_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfdb_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_ndm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_dburi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
