file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_query.dir/query/filter.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/filter.cc.o.d"
  "CMakeFiles/rdfdb_query.dir/query/inference.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/inference.cc.o.d"
  "CMakeFiles/rdfdb_query.dir/query/match.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/match.cc.o.d"
  "CMakeFiles/rdfdb_query.dir/query/rulebase.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/rulebase.cc.o.d"
  "CMakeFiles/rdfdb_query.dir/query/rules_index.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/rules_index.cc.o.d"
  "CMakeFiles/rdfdb_query.dir/query/sparql_pattern.cc.o"
  "CMakeFiles/rdfdb_query.dir/query/sparql_pattern.cc.o.d"
  "librdfdb_query.a"
  "librdfdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
