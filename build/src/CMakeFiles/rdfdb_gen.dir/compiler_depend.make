# Empty compiler generated dependencies file for rdfdb_gen.
# This may be replaced when dependencies are built.
