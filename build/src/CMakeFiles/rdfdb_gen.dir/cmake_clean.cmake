file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_gen.dir/gen/ic_dataset.cc.o"
  "CMakeFiles/rdfdb_gen.dir/gen/ic_dataset.cc.o.d"
  "CMakeFiles/rdfdb_gen.dir/gen/uniprot_gen.cc.o"
  "CMakeFiles/rdfdb_gen.dir/gen/uniprot_gen.cc.o.d"
  "CMakeFiles/rdfdb_gen.dir/gen/workload.cc.o"
  "CMakeFiles/rdfdb_gen.dir/gen/workload.cc.o.d"
  "librdfdb_gen.a"
  "librdfdb_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
