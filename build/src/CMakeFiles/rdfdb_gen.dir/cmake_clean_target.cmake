file(REMOVE_RECURSE
  "librdfdb_gen.a"
)
