# Empty compiler generated dependencies file for rdfdb_common.
# This may be replaced when dependencies are built.
