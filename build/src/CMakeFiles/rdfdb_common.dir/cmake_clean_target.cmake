file(REMOVE_RECURSE
  "librdfdb_common.a"
)
