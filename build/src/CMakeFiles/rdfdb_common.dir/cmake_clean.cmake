file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_common.dir/common/random.cc.o"
  "CMakeFiles/rdfdb_common.dir/common/random.cc.o.d"
  "CMakeFiles/rdfdb_common.dir/common/status.cc.o"
  "CMakeFiles/rdfdb_common.dir/common/status.cc.o.d"
  "CMakeFiles/rdfdb_common.dir/common/string_util.cc.o"
  "CMakeFiles/rdfdb_common.dir/common/string_util.cc.o.d"
  "librdfdb_common.a"
  "librdfdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
