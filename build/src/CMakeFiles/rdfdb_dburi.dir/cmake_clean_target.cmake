file(REMOVE_RECURSE
  "librdfdb_dburi.a"
)
