# Empty compiler generated dependencies file for rdfdb_dburi.
# This may be replaced when dependencies are built.
