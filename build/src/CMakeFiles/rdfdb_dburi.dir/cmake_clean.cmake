file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_dburi.dir/dburi/dburi.cc.o"
  "CMakeFiles/rdfdb_dburi.dir/dburi/dburi.cc.o.d"
  "librdfdb_dburi.a"
  "librdfdb_dburi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_dburi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
