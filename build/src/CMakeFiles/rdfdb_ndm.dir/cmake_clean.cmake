file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_ndm.dir/ndm/analysis.cc.o"
  "CMakeFiles/rdfdb_ndm.dir/ndm/analysis.cc.o.d"
  "CMakeFiles/rdfdb_ndm.dir/ndm/network.cc.o"
  "CMakeFiles/rdfdb_ndm.dir/ndm/network.cc.o.d"
  "librdfdb_ndm.a"
  "librdfdb_ndm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_ndm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
