# Empty compiler generated dependencies file for rdfdb_ndm.
# This may be replaced when dependencies are built.
