file(REMOVE_RECURSE
  "librdfdb_ndm.a"
)
