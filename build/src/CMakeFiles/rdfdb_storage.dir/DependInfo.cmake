
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/predicate.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/predicate.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/predicate.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/value.cc.o.d"
  "/root/repo/src/storage/view.cc" "src/CMakeFiles/rdfdb_storage.dir/storage/view.cc.o" "gcc" "src/CMakeFiles/rdfdb_storage.dir/storage/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
