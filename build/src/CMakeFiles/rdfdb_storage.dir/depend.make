# Empty dependencies file for rdfdb_storage.
# This may be replaced when dependencies are built.
