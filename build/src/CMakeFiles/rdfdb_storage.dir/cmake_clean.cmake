file(REMOVE_RECURSE
  "CMakeFiles/rdfdb_storage.dir/storage/database.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/index.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/index.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/predicate.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/predicate.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/snapshot.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/snapshot.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/table.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/value.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/value.cc.o.d"
  "CMakeFiles/rdfdb_storage.dir/storage/view.cc.o"
  "CMakeFiles/rdfdb_storage.dir/storage/view.cc.o.d"
  "librdfdb_storage.a"
  "librdfdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
