file(REMOVE_RECURSE
  "librdfdb_storage.a"
)
