# Empty compiler generated dependencies file for bench_ndm_analysis.
# This may be replaced when dependencies are built.
