file(REMOVE_RECURSE
  "CMakeFiles/bench_ndm_analysis.dir/bench_ndm_analysis.cpp.o"
  "CMakeFiles/bench_ndm_analysis.dir/bench_ndm_analysis.cpp.o.d"
  "bench_ndm_analysis"
  "bench_ndm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
