# Empty compiler generated dependencies file for bench_exp1_member_functions.
# This may be replaced when dependencies are built.
