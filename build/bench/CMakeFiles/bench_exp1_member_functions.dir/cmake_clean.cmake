file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_member_functions.dir/bench_exp1_member_functions.cpp.o"
  "CMakeFiles/bench_exp1_member_functions.dir/bench_exp1_member_functions.cpp.o.d"
  "bench_exp1_member_functions"
  "bench_exp1_member_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_member_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
