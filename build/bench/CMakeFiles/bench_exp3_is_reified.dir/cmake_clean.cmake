file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_is_reified.dir/bench_exp3_is_reified.cpp.o"
  "CMakeFiles/bench_exp3_is_reified.dir/bench_exp3_is_reified.cpp.o.d"
  "bench_exp3_is_reified"
  "bench_exp3_is_reified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_is_reified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
