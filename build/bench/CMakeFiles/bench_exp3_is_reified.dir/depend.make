# Empty dependencies file for bench_exp3_is_reified.
# This may be replaced when dependencies are built.
