file(REMOVE_RECURSE
  "CMakeFiles/bench_value_dedup.dir/bench_value_dedup.cpp.o"
  "CMakeFiles/bench_value_dedup.dir/bench_value_dedup.cpp.o.d"
  "bench_value_dedup"
  "bench_value_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
