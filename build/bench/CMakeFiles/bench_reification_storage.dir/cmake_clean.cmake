file(REMOVE_RECURSE
  "CMakeFiles/bench_reification_storage.dir/bench_reification_storage.cpp.o"
  "CMakeFiles/bench_reification_storage.dir/bench_reification_storage.cpp.o.d"
  "bench_reification_storage"
  "bench_reification_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reification_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
