# Empty dependencies file for bench_reification_storage.
# This may be replaced when dependencies are built.
