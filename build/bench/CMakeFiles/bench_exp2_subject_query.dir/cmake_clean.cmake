file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_subject_query.dir/bench_exp2_subject_query.cpp.o"
  "CMakeFiles/bench_exp2_subject_query.dir/bench_exp2_subject_query.cpp.o.d"
  "bench_exp2_subject_query"
  "bench_exp2_subject_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_subject_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
