# Empty compiler generated dependencies file for bench_exp2_subject_query.
# This may be replaced when dependencies are built.
