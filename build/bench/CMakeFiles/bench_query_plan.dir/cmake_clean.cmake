file(REMOVE_RECURSE
  "CMakeFiles/bench_query_plan.dir/bench_query_plan.cpp.o"
  "CMakeFiles/bench_query_plan.dir/bench_query_plan.cpp.o.d"
  "bench_query_plan"
  "bench_query_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
