# Empty dependencies file for bench_query_plan.
# This may be replaced when dependencies are built.
