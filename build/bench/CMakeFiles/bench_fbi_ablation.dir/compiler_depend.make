# Empty compiler generated dependencies file for bench_fbi_ablation.
# This may be replaced when dependencies are built.
