file(REMOVE_RECURSE
  "CMakeFiles/bench_fbi_ablation.dir/bench_fbi_ablation.cpp.o"
  "CMakeFiles/bench_fbi_ablation.dir/bench_fbi_ablation.cpp.o.d"
  "bench_fbi_ablation"
  "bench_fbi_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fbi_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
