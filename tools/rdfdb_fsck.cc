// rdfdb_fsck: offline integrity verifier for the store's persistence
// files. Classifies each argument by content (checkpoint manifest,
// footered snapshot, redo log), verifies it read-only, and prints one
// verdict line per file:
//
//     OK       intact (details appended)
//     TORN     redo log with a torn final record — recoverable by
//              design; replay will truncate it at the last valid
//              boundary
//     CORRUPT  integrity failure recovery would refuse
//
// Exit code: 0 when every file is OK or TORN, 1 when anything is
// CORRUPT or unreadable, 64 on usage error. Nothing is ever modified.

#include <cstdio>
#include <cstring>
#include <string>

#include "rdf/redo_log.h"
#include "storage/env.h"
#include "storage/snapshot.h"

namespace {

using rdfdb::rdf::CheckpointManifest;
using rdfdb::rdf::ReadManifest;
using rdfdb::rdf::ReplayStats;
using rdfdb::rdf::VerifyRedoLog;

enum class Kind { kManifest, kSnapshot, kRedoLog };

/// Classify by content, not name: manifests announce themselves in
/// line 1, snapshots carry the "RDBD" payload magic up front (and the
/// "RDBF" footer magic at the tail), everything else is a redo log.
Kind Classify(const std::string& head) {
  static constexpr char kManifestHeader[] = "RDFDB-MANIFEST";
  if (head.compare(0, sizeof(kManifestHeader) - 1, kManifestHeader) == 0) {
    return Kind::kManifest;
  }
  if (head.size() >= 4) {
    uint32_t magic;
    std::memcpy(&magic, head.data(), sizeof(magic));
    if (magic == 0x52444244u) return Kind::kSnapshot;  // "RDBD"
  }
  return Kind::kRedoLog;
}

/// Verify one file; prints the verdict line. Returns false on CORRUPT.
bool Check(const std::string& path) {
  rdfdb::storage::Env* env = rdfdb::storage::Env::Default();
  auto contents = env->ReadFileToString(path);
  if (!contents.ok()) {
    std::printf("CORRUPT %s: %s\n", path.c_str(),
                contents.status().message().c_str());
    return false;
  }
  switch (Classify(*contents)) {
    case Kind::kManifest: {
      auto manifest = ReadManifest(path);
      if (!manifest.ok()) {
        std::printf("CORRUPT %s: %s\n", path.c_str(),
                    manifest.status().message().c_str());
        return false;
      }
      std::printf("OK %s: manifest gen=%llu snapshot=%s log_start_seq=%llu\n",
                  path.c_str(),
                  static_cast<unsigned long long>(manifest->generation),
                  manifest->snapshot_file.c_str(),
                  static_cast<unsigned long long>(manifest->log_start_seq));
      return true;
    }
    case Kind::kSnapshot: {
      auto info = rdfdb::storage::VerifySnapshotFile(path);
      if (!info.ok()) {
        std::printf("CORRUPT %s: %s\n", path.c_str(),
                    info.status().message().c_str());
        return false;
      }
      std::printf("OK %s: snapshot tables=%u payload=%llu bytes crc32c=%08x\n",
                  path.c_str(), info->table_count,
                  static_cast<unsigned long long>(info->payload_size),
                  info->payload_crc);
      return true;
    }
    case Kind::kRedoLog: {
      auto stats = VerifyRedoLog(path);
      if (!stats.ok()) {
        std::printf("CORRUPT %s: %s\n", path.c_str(),
                    stats.status().message().c_str());
        return false;
      }
      if (stats->torn_tail) {
        std::printf(
            "TORN %s: redo log, %zu intact record(s) seq [%llu..%llu], "
            "torn final record at byte %llu (recovery will truncate)\n",
            path.c_str(), stats->records,
            static_cast<unsigned long long>(stats->first_seq),
            static_cast<unsigned long long>(stats->last_seq),
            static_cast<unsigned long long>(stats->torn_offset));
        return true;
      }
      std::printf("OK %s: redo log, %zu record(s) seq [%llu..%llu]\n",
                  path.c_str(), stats->records,
                  static_cast<unsigned long long>(stats->first_seq),
                  static_cast<unsigned long long>(stats->last_seq));
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rdfdb_fsck <file>...\n"
                 "  verifies rdfdb snapshots, redo logs, and checkpoint\n"
                 "  manifests (classified by content) without modifying "
                 "them\n");
    return 64;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!Check(argv[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
