// rdfdb_postmortem: pretty-print a flight-recorder crash black box.
//
//   rdfdb_postmortem <blackbox-file>
//
// Reads the mmap'd black box a crashed process left behind (see
// src/obs/crash_dump.h), prints the post-mortem report — cause, faulting
// stack, in-flight operations, recent events, last profiler aggregate —
// and appends a sparkline view of the recorded metric history.
//
// Exit status: 0 when the file parses and the dump is complete (the
// crash handler finished writing), 1 when the file is unreadable or the
// dump is truncated, 2 on usage error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/crash_dump.h"
#include "obs/flight_recorder.h"

namespace {

// One line per series: name, last value, min..max, sparkline. Sorted by
// name so related series (foo.p50/p95/p99) group together.
void PrintHistory(const std::string& history_text) {
  if (history_text.empty()) {
    std::printf("--- metric history ---\n(none recorded)\n");
    return;
  }
  auto parsed = rdfdb::obs::ParseHistoryText(history_text);
  if (!parsed.ok()) {
    std::printf("--- metric history ---\n(unparseable: %s)\n",
                parsed.status().ToString().c_str());
    return;
  }
  const int64_t span_ms =
      static_cast<int64_t>(parsed->t_unix_ms.size()) * parsed->interval_ms;
  std::printf("--- metric history (%zu points, %lld ms apart, ~%.0fs) ---\n",
              parsed->t_unix_ms.size(),
              static_cast<long long>(parsed->interval_ms),
              static_cast<double>(span_ms) / 1000.0);
  std::vector<std::string> names;
  names.reserve(parsed->series.size());
  size_t width = 0;
  for (const auto& [name, values] : parsed->series) {
    names.push_back(name);
    width = std::max(width, name.size());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    const std::vector<double>& values = parsed->series.at(name);
    double lo = 0.0;
    double hi = 0.0;
    double last = 0.0;
    bool any = false;
    for (double v : values) {
      if (std::isnan(v)) continue;
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      last = v;
    }
    if (!any) continue;
    std::printf("  %-*s %s last=%.6g min=%.6g max=%.6g\n",
                static_cast<int>(width), name.c_str(),
                rdfdb::obs::Sparkline(values).c_str(), last, lo, hi);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: rdfdb_postmortem <blackbox-file>\n");
    return 2;
  }
  auto pm = rdfdb::obs::ReadBlackBox(argv[1]);
  if (!pm.ok()) {
    std::fprintf(stderr, "rdfdb_postmortem: %s\n",
                 pm.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", rdfdb::obs::RenderPostMortem(*pm).c_str());
  PrintHistory(pm->history_text);
  return pm->complete ? 0 : 1;
}
