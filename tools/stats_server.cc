// stats_server: run a live store with every observability facility
// attached and expose it over HTTP.
//
//   stats_server [--port <n>] [--events <path>] [--slow-ms <n>]
//                [--blackbox <path>] [--sample-ms <n>]
//                [file.nt [model_name]]
//
// Loads the N-Triples file (or a ~10k-triple synthetic UniProt-style
// dataset with no file), attaches an event log (JSONL to --events, or a
// discard sink), a slow-query log (--slow-ms threshold, default 1ms),
// a span timeline, and a flight recorder with a crash black box
// (--blackbox path, default "rdfdb_blackbox.bin"; --sample-ms sampling
// interval, default 1000). A background thread keeps running queries so
// the instruments move, and the process serves until interrupted:
//
//   GET /metrics    Prometheus text exposition
//   GET /varz       JSON with per-interval rates since the last scrape
//   GET /healthz    liveness probe (degraded verdict on bad signals)
//   GET /slow       slow-query log as JSON
//   GET /timeline   Chrome trace-event JSON (load in chrome://tracing)
//   GET /profilez   sample for ?seconds=N, flamegraph collapsed stacks
//   GET /allocz     live heap + per-scope allocation attribution
//   GET /activityz  in-flight operations with live cpu/alloc deltas
//   GET /historyz   flight-recorder metric history ring
//
// If the process dies on SIGSEGV/SIGBUS/SIGABRT/SIGFPE, the black box
// holds the post-mortem; pretty-print it with `rdfdb_postmortem`.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "gen/uniprot_gen.h"
#include "obs/active_ops.h"
#include "obs/crash_dump.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "obs/stats_server.h"
#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"

namespace {

rdfdb::obs::StatsServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8080;
  std::string events_path;
  double slow_ms = 1.0;
  std::string blackbox_path = "rdfdb_blackbox.bin";
  int64_t sample_ms = rdfdb::obs::kDefaultSampleIntervalMs;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      slow_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--blackbox") == 0 && i + 1 < argc) {
      blackbox_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sample-ms") == 0 && i + 1 < argc) {
      sample_ms = std::atoll(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }

  // The observability objects must outlive the store (the store's
  // destructor emits a final "close" event).
  std::ostringstream discard;
  rdfdb::obs::EventLog::Options event_options;
  if (!events_path.empty()) {
    event_options.path = events_path;
  } else {
    event_options.sink = &discard;
  }
  auto event_log = rdfdb::obs::EventLog::Open(std::move(event_options));
  if (!event_log.ok()) {
    std::fprintf(stderr, "event log: %s\n",
                 event_log.status().ToString().c_str());
    return 1;
  }
  rdfdb::obs::SlowQueryLog slow_queries(
      static_cast<int64_t>(slow_ms * 1e6));
  rdfdb::obs::Timeline timeline;

  rdfdb::rdf::RdfStore store;
  store.set_event_log(event_log->get());
  store.set_slow_query_log(&slow_queries);
  store.set_timeline(&timeline);

  const std::string model = args.size() > 1 ? args[1] : "m";
  auto created = store.CreateRdfModel(model, model + "_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto stats = [&]() -> rdfdb::Result<rdfdb::rdf::BulkLoadStats> {
    if (!args.empty()) {
      return rdfdb::rdf::BulkLoadFile(&store, model, args[0]);
    }
    rdfdb::gen::UniProtOptions options;
    options.target_triples = 10000;
    auto dataset = rdfdb::gen::GenerateUniProt(options);
    return rdfdb::rdf::BulkLoad(&store, model, dataset.triples);
  }();
  if (!stats.ok()) {
    std::fprintf(stderr, "load: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", stats->ToString().c_str());

  // Flight recorder: periodic metric-history sampling plus the crash
  // black box. The crash handler turns a fatal signal into a post-mortem
  // dump readable with rdfdb_postmortem.
  rdfdb::obs::FlightRecorder::Options recorder_options;
  recorder_options.registry = &store.metrics_registry();
  recorder_options.events = event_log->get();
  recorder_options.refresh = [&store] { store.UpdateMemoryGauges(); };
  recorder_options.sample_interval_ms = sample_ms;
  recorder_options.black_box_path = blackbox_path;
  auto recorder =
      rdfdb::obs::FlightRecorder::Start(std::move(recorder_options));
  if (!recorder.ok()) {
    std::fprintf(stderr, "flight recorder: %s\n",
                 recorder.status().ToString().c_str());
    return 1;
  }
  if ((*recorder)->black_box() != nullptr) {
    rdfdb::obs::InstallCrashHandler((*recorder)->black_box());
    std::fprintf(stderr, "crash black box: %s\n", blackbox_path.c_str());
  }

  // Background workload: keep the query instruments (and the slow-query
  // log) moving so /varz rates are non-zero. Queries are read-only, so
  // running them alongside scrapes is safe. The long-lived guard keeps
  // the workload session visible in /activityz (and in any crash dump)
  // even between individual queries.
  std::atomic<bool> stop{false};
  std::thread workload([&] {
    rdfdb::obs::ActiveOpGuard session(rdfdb::obs::OpKind::kQuery,
                                      "workload (?s ?p ?o) on " + model);
    while (!stop.load(std::memory_order_relaxed)) {
      rdfdb::query::MatchOptions options;
      options.limit = 256;
      auto r = rdfdb::query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                         {model}, {}, {}, "", options);
      if (!r.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  rdfdb::obs::StatsServer::Sources sources;
  sources.registry = &store.metrics_registry();
  sources.slow_queries = &slow_queries;
  sources.timeline = &timeline;
  sources.events = event_log->get();
  // Memory gauges are point-in-time: recompute them per scrape.
  sources.refresh = [&store] { store.UpdateMemoryGauges(); };
  sources.recorder = recorder->get();
  rdfdb::obs::StatsServer server(sources);
  auto started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    stop.store(true, std::memory_order_relaxed);
    workload.join();
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr,
               "serving on http://127.0.0.1:%u "
               "(/metrics /varz /healthz /slow /timeline /profilez "
               "/allocz /activityz /historyz)\n",
               static_cast<unsigned>(server.port()));
  server.ServeForever();

  stop.store(true, std::memory_order_relaxed);
  workload.join();
  g_server = nullptr;
  return 0;
}
