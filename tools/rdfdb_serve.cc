// rdfdb_serve: the deadline-aware network front-end over a snapshot
// store (DESIGN.md §16).
//
//   rdfdb_serve [--port <n>] [--workers <n>] [--queue <n>]
//               [--max-deadline-ms <n>] [--default-deadline-ms <n>]
//               [--query-threads <n>] [--events <path>]
//               [--blackbox <path>] [--triples <n>]
//               [file.nt [model_name]]
//
// Loads the N-Triples file (or a synthetic UniProt-style dataset of
// --triples statements, default 10000) into a SnapshotRdfStore, then
// serves:
//
//   GET  /query?q=<patterns>&model=<m>[&filter=..][&limit=N]
//        [&distinct=1][&threads=N]      match over a pinned snapshot
//   POST /insert?model=<m>[&create=1]   N-Triples body, batched write
//   POST /reify?model=<m>&id=<t_id>     reify a stored triple
//   GET  /metrics /varz /healthz /slow /timeline /profilez /allocz
//        /activityz /historyz           observability surface
//
// Every request carries a deadline (X-Deadline-Ms, clamped to
// --max-deadline-ms) enforced end to end; a full admission queue sheds
// with 503 + Retry-After. SIGTERM/SIGINT drains gracefully: stop
// accepting, finish admitted requests within their deadlines, flush
// the event log, exit 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "gen/uniprot_gen.h"
#include "obs/crash_dump.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "rdf/bulk_load.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot_store.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  rdfdb::server::RdfServerOptions options;
  options.port = 8090;
  std::string events_path;
  std::string blackbox_path;
  size_t target_triples = 10000;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      options.queue_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-deadline-ms") == 0 &&
               i + 1 < argc) {
      options.max_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--default-deadline-ms") == 0 &&
               i + 1 < argc) {
      options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--query-threads") == 0 && i + 1 < argc) {
      options.query_threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events_path = argv[++i];
    } else if (std::strcmp(argv[i], "--blackbox") == 0 && i + 1 < argc) {
      blackbox_path = argv[++i];
    } else if (std::strcmp(argv[i], "--triples") == 0 && i + 1 < argc) {
      target_triples = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      args.push_back(argv[i]);
    }
  }

  std::ostringstream discard;
  rdfdb::obs::EventLog::Options event_options;
  if (!events_path.empty()) {
    event_options.path = events_path;
  } else {
    event_options.sink = &discard;
  }
  auto event_log = rdfdb::obs::EventLog::Open(std::move(event_options));
  if (!event_log.ok()) {
    std::fprintf(stderr, "event log: %s\n",
                 event_log.status().ToString().c_str());
    return 1;
  }
  rdfdb::obs::SlowQueryLog slow_queries(int64_t{1000000});  // 1 ms
  rdfdb::obs::Timeline timeline;

  rdfdb::rdf::SnapshotRdfStore store;
  store.SetObservability(event_log->get(), &slow_queries, &timeline);

  const std::string model = args.size() > 1 ? args[1] : "m";
  auto created = store.CreateRdfModel(model, model + "_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto load = [&]() -> rdfdb::Result<rdfdb::rdf::BulkLoadStats> {
    rdfdb::Result<rdfdb::rdf::BulkLoadStats> out =
        rdfdb::rdf::BulkLoadStats{};
    rdfdb::Status applied =
        store.Apply([&](rdfdb::rdf::RdfStore& live) -> rdfdb::Status {
          if (!args.empty()) {
            out = rdfdb::rdf::BulkLoadFile(&live, model, args[0]);
          } else {
            rdfdb::gen::UniProtOptions gen_options;
            gen_options.target_triples = target_triples;
            auto dataset = rdfdb::gen::GenerateUniProt(gen_options);
            out = rdfdb::rdf::BulkLoad(&live, model, dataset.triples);
          }
          return out.status();
        });
    if (!applied.ok()) return applied;
    return out;
  }();
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", load->ToString().c_str());

  // Flight recorder over the same registry the server's metrics
  // register into, so rdfdb_server_* history shows up in /historyz.
  rdfdb::obs::FlightRecorder::Options recorder_options;
  recorder_options.registry = &store.metrics_registry();
  recorder_options.events = event_log->get();
  recorder_options.refresh = [&store] { store.UpdateMemoryGauges(); };
  if (!blackbox_path.empty()) {
    recorder_options.black_box_path = blackbox_path;
  }
  auto recorder =
      rdfdb::obs::FlightRecorder::Start(std::move(recorder_options));
  if (!recorder.ok()) {
    std::fprintf(stderr, "flight recorder: %s\n",
                 recorder.status().ToString().c_str());
    return 1;
  }
  if ((*recorder)->black_box() != nullptr) {
    rdfdb::obs::InstallCrashHandler((*recorder)->black_box());
  }

  options.event_log = event_log->get();
  options.stats_sources.slow_queries = &slow_queries;
  options.stats_sources.timeline = &timeline;
  options.stats_sources.events = event_log->get();
  options.stats_sources.recorder = recorder->get();

  rdfdb::server::RdfServer server(&store, options);
  rdfdb::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr,
               "rdfdb_serve on http://127.0.0.1:%u  model=%s workers=%u "
               "queue=%zu max_deadline=%lldms\n",
               static_cast<unsigned>(server.port()), model.c_str(),
               options.workers, options.queue_capacity,
               static_cast<long long>(options.max_deadline_ms));

  while (!g_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "draining...\n");
  server.Shutdown();
  std::fprintf(stderr, "drained; exiting\n");
  return 0;
}
