#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer job (the memory-safety
# twin of run_tsan.sh). Builds a dedicated build-asan tree and runs the
# full test suite under ASan+UBSan; any report fails the run. The suite
# includes the corrupt-input corpus (test_corrupt_recovery: truncated /
# bit-flipped / length-attacked snapshots, logs and manifests), the
# crash-recovery torture harness, and the compression codec fuzz tests
# (test_codec varint/posting-list/front-coding round-trips plus the
# test_exec_diff compressed-vs-table-scan differentials), so
# hostile-byte parsing and block-decode paths get sanitizer coverage
# here.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRDFDB_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "ASan+UBSan run clean."
