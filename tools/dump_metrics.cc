// dump_metrics: load RDF data, exercise the query path, and dump the
// store's metrics registry.
//
//   dump_metrics [--json] [--watch <sec> [--intervals <k>]]
//                [--profile <sec>] [file.nt [model_name]]
//
// Loads the N-Triples file through the pipelined bulk loader (or, with
// no file, generates a ~10k-triple synthetic UniProt-style dataset and
// loads that). Prints the bulk-load stats line and an EXPLAIN ANALYZE
// trace of a sample query to stderr, then the registry — Prometheus
// text by default, JSON with --json — to stdout, so the dump can be
// piped into other tooling.
//
// With --watch <sec>, a background thread keeps running the sample
// query while the main thread prints one per-interval report (counter
// deltas/rates, per-interval histogram quantiles) every <sec> seconds
// for --intervals rounds (default 5), then the final registry dump.
//
// With --profile <sec>, a background query workload runs while the
// sampling profiler captures for <sec> seconds; stdout is then ONLY the
// flamegraph collapsed stacks ("frame;frame;leaf count" lines — pipe
// into flamegraph.pl, or validate in CI), no registry dump.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "gen/uniprot_gen.h"
#include "obs/metrics_snapshot.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"

int main(int argc, char** argv) {
  bool json = false;
  double watch_seconds = 0.0;
  double profile_seconds = 0.0;
  int intervals = 5;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--intervals") == 0 && i + 1 < argc) {
      intervals = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_seconds = std::atof(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }

  rdfdb::rdf::RdfStore store;
  const std::string model = args.size() > 1 ? args[1] : "m";
  auto created = store.CreateRdfModel(model, model + "_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }

  auto stats = [&]() -> rdfdb::Result<rdfdb::rdf::BulkLoadStats> {
    if (!args.empty()) {
      return rdfdb::rdf::BulkLoadFile(&store, model, args[0]);
    }
    rdfdb::gen::UniProtOptions options;
    options.target_triples = 10000;
    auto dataset = rdfdb::gen::GenerateUniProt(options);
    return rdfdb::rdf::BulkLoad(&store, model, dataset.triples);
  }();
  if (!stats.ok()) {
    std::fprintf(stderr, "load: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", stats->ToString().c_str());

  // Exercise the query path so the query instruments are live, and show
  // the trace for it.
  rdfdb::obs::QueryTrace trace;
  rdfdb::query::MatchOptions match_options;
  match_options.trace = &trace;
  match_options.limit = 16;
  auto match = rdfdb::query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                         {model}, {}, {}, "",
                                         match_options);
  if (match.ok()) {
    std::fprintf(stderr, "%s\n", trace.ToString().c_str());
  } else {
    std::fprintf(stderr, "sample query: %s\n",
                 match.status().ToString().c_str());
  }

  if (profile_seconds > 0.0) {
    // Keep the store busy so the CPU-time-driven sampler has something
    // to catch, capture, and emit only the collapsed stacks.
    std::atomic<bool> stop{false};
    std::thread worker([&] {
      rdfdb::query::MatchOptions profile_options;
      profile_options.limit = 4096;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = rdfdb::query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                           {model}, {}, {}, "",
                                           profile_options);
        if (!r.ok()) break;
      }
    });
    const std::string collapsed =
        rdfdb::obs::ProfileForSeconds(profile_seconds);
    stop.store(true, std::memory_order_relaxed);
    worker.join();
    std::fprintf(stderr, "profile: %llu sample(s), %llu dropped\n",
                 static_cast<unsigned long long>(
                     rdfdb::obs::ProfilerSampleCount()),
                 static_cast<unsigned long long>(
                     rdfdb::obs::ProfilerDroppedCount()));
    std::fputs(collapsed.c_str(), stdout);
    return 0;
  }

  if (watch_seconds > 0.0 && intervals > 0) {
    // Keep the instruments moving on a background thread (the query
    // path is read-only, so this is safe against the main thread's
    // snapshot reads) and report per-interval deltas.
    std::atomic<bool> stop{false};
    std::thread worker([&] {
      rdfdb::query::MatchOptions watch_options;
      watch_options.limit = 64;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = rdfdb::query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                           {model}, {}, {}, "",
                                           watch_options);
        if (!r.ok()) break;
      }
    });
    rdfdb::obs::MetricsSnapshot prev =
        rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
    for (int i = 0; i < intervals; ++i) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(watch_seconds));
      rdfdb::obs::MetricsSnapshot cur =
          rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
      std::fprintf(stderr, "%s",
                   rdfdb::obs::RenderIntervalText(prev, cur).c_str());
      prev = std::move(cur);
    }
    stop.store(true, std::memory_order_relaxed);
    worker.join();
  }

  // Point-in-time memory gauges (rdfdb_mem_*) are computed on demand.
  // The derived bytes/triple line (store-owned gauges over live
  // triples — the compression headline) goes to stderr so stdout stays
  // pure registry output.
  store.UpdateMemoryGauges();
  {
    rdfdb::obs::MetricsSnapshot snap =
        rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
    const double store_bytes = static_cast<double>(
        snap.Gauge("rdfdb_mem_value_store_bytes") +
        snap.Gauge("rdfdb_mem_link_table_bytes") +
        snap.Gauge("rdfdb_mem_quad_cache_bytes") +
        snap.Gauge("rdfdb_mem_term_dict_bytes") +
        snap.Gauge("rdfdb_mem_retired_version_bytes"));
    const size_t live = store.links().TotalTripleCount();
    std::fprintf(stderr, "bytes/triple: %.1f (store %.1f MB / %zu triples)\n",
                 live == 0 ? 0.0 : store_bytes / static_cast<double>(live),
                 store_bytes / 1e6, live);
  }
  const std::string dump = json ? store.metrics_registry().RenderJson()
                                : store.metrics_registry().RenderPrometheus();
  std::fputs(dump.c_str(), stdout);
  return 0;
}
