// dump_metrics: load RDF data, exercise the query path, and dump the
// store's metrics registry.
//
//   dump_metrics [--json] [file.nt [model_name]]
//
// Loads the N-Triples file through the pipelined bulk loader (or, with
// no file, generates a ~10k-triple synthetic UniProt-style dataset and
// loads that). Prints the bulk-load stats line and an EXPLAIN ANALYZE
// trace of a sample query to stderr, then the registry — Prometheus
// text by default, JSON with --json — to stdout, so the dump can be
// piped into other tooling.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "gen/uniprot_gen.h"
#include "obs/trace.h"
#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  rdfdb::rdf::RdfStore store;
  const std::string model = args.size() > 1 ? args[1] : "m";
  auto created = store.CreateRdfModel(model, model + "_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }

  auto stats = [&]() -> rdfdb::Result<rdfdb::rdf::BulkLoadStats> {
    if (!args.empty()) {
      return rdfdb::rdf::BulkLoadFile(&store, model, args[0]);
    }
    rdfdb::gen::UniProtOptions options;
    options.target_triples = 10000;
    auto dataset = rdfdb::gen::GenerateUniProt(options);
    return rdfdb::rdf::BulkLoad(&store, model, dataset.triples);
  }();
  if (!stats.ok()) {
    std::fprintf(stderr, "load: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", stats->ToString().c_str());

  // Exercise the query path so the query instruments are live, and show
  // the trace for it.
  rdfdb::obs::QueryTrace trace;
  rdfdb::query::MatchOptions match_options;
  match_options.trace = &trace;
  match_options.limit = 16;
  auto match = rdfdb::query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                         {model}, {}, {}, "",
                                         match_options);
  if (match.ok()) {
    std::fprintf(stderr, "%s\n", trace.ToString().c_str());
  } else {
    std::fprintf(stderr, "sample query: %s\n",
                 match.status().ToString().c_str());
  }

  const std::string dump = json ? store.metrics_registry().RenderJson()
                                : store.metrics_registry().RenderPrometheus();
  std::fputs(dump.c_str(), stdout);
  return 0;
}
