// rdfdb_top: a `top`-style live view of one store's instrument rates.
//
//   rdfdb_top [--interval <sec>] [--ticks <n>] [--mem] [--history]
//             [--readers <n>] [--writer bulkload] [--triples <m>]
//
// Default mode runs an in-process workload over a ConcurrentRdfStore —
// one writer inserting triples, one reader issuing SDO_RDF_MATCH — and
// prints one line per interval from metrics-registry snapshot deltas:
// insert, intern, and match rates plus per-interval query latency
// quantiles. --ticks bounds the run (default 10; 0 = until
// interrupted).
//
// `--writer bulkload` switches to the snapshot-store workload: a writer
// bulk-loads --triples statements (default 1 M) chunk by chunk through
// SnapshotRdfStore::Apply (one published version per chunk) while
// --readers threads (default 8) run SDO_RDF_MATCH against pinned
// snapshots, lock-free. Each tick additionally reports version-publish
// and epoch-reclamation gauges; the run ends when the load finishes (or
// at --ticks). The per-interval q_p50/q_p95/q_p99 columns then show
// reader latency DURING the load — the number the global rwlock design
// could not keep flat.
//
// --mem appends resource columns to either mode: heap_mb (live tracked
// heap), store_mb (sum of the store-owned rdfdb_mem_* gauges,
// refreshed per tick via UpdateMemoryGauges), B/trip (store_mb's bytes
// over the live triple count — the compression headline, comparable
// directly to bench_memory_footprint) and cpu% (process CPU over the
// interval, all threads; can exceed 100 on multi-core).
//
// --history attaches a flight recorder sampling at the tick interval
// and, after the run, prints one sparkline per recorded series — the
// same history ring a server process exports on /historyz.

#include <time.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/flight_recorder.h"
#include "obs/metrics_snapshot.h"
#include "obs/resource_tracker.h"
#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/concurrent_store.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot_store.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int RunDefaultMode(double interval, int ticks, bool mem, bool history);
int RunBulkloadMode(double interval, int ticks, int readers, size_t triples,
                    bool mem, bool history);

/// Flight recorder for --history: samples the registry at the tick
/// interval so the post-run sparklines line up with the printed rows.
std::unique_ptr<rdfdb::obs::FlightRecorder> StartHistoryRecorder(
    rdfdb::obs::MetricsRegistry* registry, double interval) {
  rdfdb::obs::FlightRecorder::Options options;
  options.registry = registry;
  options.sample_interval_ms =
      std::max<int64_t>(1, static_cast<int64_t>(interval * 1000.0));
  auto recorder = rdfdb::obs::FlightRecorder::Start(std::move(options));
  if (!recorder.ok()) {
    std::fprintf(stderr, "flight recorder: %s\n",
                 recorder.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*recorder);
}

/// Post-run --history block: one sparkline per series that moved.
void PrintHistorySparklines(const rdfdb::obs::FlightRecorder& recorder) {
  auto parsed = rdfdb::obs::ParseHistoryText(recorder.RenderHistoryText());
  if (!parsed.ok()) {
    std::fprintf(stderr, "history: %s\n",
                 parsed.status().ToString().c_str());
    return;
  }
  std::printf("\n--- metric history (%zu points, %lld ms apart) ---\n",
              parsed->t_unix_ms.size(),
              static_cast<long long>(parsed->interval_ms));
  std::vector<std::string> names;
  size_t width = 0;
  for (const auto& [name, values] : parsed->series) {
    names.push_back(name);
    width = std::max(width, name.size());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    const std::vector<double>& values = parsed->series.at(name);
    double lo = 0.0;
    double hi = 0.0;
    bool any = false;
    for (double v : values) {
      if (std::isnan(v)) continue;
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!any) continue;
    std::printf("  %-*s %s min=%.6g max=%.6g\n", static_cast<int>(width),
                name.c_str(), rdfdb::obs::Sparkline(values).c_str(), lo,
                hi);
  }
}

/// Process CPU time (all threads), for the --mem cpu% column.
int64_t ProcessCpuNanos() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

/// Sum of the store-owned rdfdb_mem_* gauges in `snap` (bytes). The
/// caller refreshes them (UpdateMemoryGauges) before taking the
/// snapshot, so the store_mb and B/trip columns read from the same
/// gauges a Prometheus scrape would.
double StoreGaugeBytes(const rdfdb::obs::MetricsSnapshot& snap) {
  return static_cast<double>(snap.Gauge("rdfdb_mem_value_store_bytes") +
                             snap.Gauge("rdfdb_mem_link_table_bytes") +
                             snap.Gauge("rdfdb_mem_quad_cache_bytes") +
                             snap.Gauge("rdfdb_mem_term_dict_bytes") +
                             snap.Gauge("rdfdb_mem_retired_version_bytes"));
}

}  // namespace

int main(int argc, char** argv) {
  double interval = 1.0;
  int ticks = 10;
  int readers = 8;
  size_t triples = 1000000;
  bool mem = false;
  bool history = false;
  std::string writer_mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
      ticks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--readers") == 0 && i + 1 < argc) {
      readers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--writer") == 0 && i + 1 < argc) {
      writer_mode = argv[++i];
    } else if (std::strcmp(argv[i], "--triples") == 0 && i + 1 < argc) {
      triples = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--mem") == 0) {
      mem = true;
    } else if (std::strcmp(argv[i], "--history") == 0) {
      history = true;
    } else {
      std::fprintf(stderr,
                   "usage: rdfdb_top [--interval <sec>] [--ticks <n>]\n"
                   "                 [--readers <n>] [--writer bulkload]\n"
                   "                 [--triples <m>] [--mem] [--history]\n");
      return 2;
    }
  }
  if (interval <= 0.0) interval = 1.0;
  if (readers < 1) readers = 1;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  if (writer_mode.empty()) {
    return RunDefaultMode(interval, ticks, mem, history);
  }
  if (writer_mode == "bulkload") {
    return RunBulkloadMode(interval, ticks, readers, triples, mem, history);
  }
  std::fprintf(stderr, "unknown --writer mode '%s' (expected: bulkload)\n",
               writer_mode.c_str());
  return 2;
}

namespace {

int RunDefaultMode(double interval, int ticks, bool mem, bool history) {
  rdfdb::rdf::ConcurrentRdfStore store;
  auto created = store.CreateRdfModel("top", "top_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<rdfdb::obs::FlightRecorder> recorder;
  if (history) {
    recorder = StartHistoryRecorder(&store.metrics_registry(), interval);
  }

  // Writer: a stream of fresh triples (every subject also gets a type
  // triple so queries have shape to join on).
  std::thread writer([&] {
    uint64_t n = 0;
    while (!g_stop.load(std::memory_order_relaxed)) {
      const std::string subject = "<urn:s" + std::to_string(n) + ">";
      auto inserted = store.InsertTriple(
          "top", subject, "<urn:p" + std::to_string(n % 7) + ">",
          "\"v" + std::to_string(n) + "\"");
      if (!inserted.ok()) break;
      inserted = store.InsertTriple(
          "top", subject, "<rdf:type>",
          "<urn:class" + std::to_string(n % 3) + ">");
      if (!inserted.ok()) break;
      ++n;
    }
  });

  // Reader: repeated matches under the shared lock.
  std::thread reader([&] {
    while (!g_stop.load(std::memory_order_relaxed)) {
      auto result = store.WithReadLock([](const rdfdb::rdf::RdfStore& s) {
        rdfdb::query::MatchOptions options;
        options.limit = 128;
        return rdfdb::query::SdoRdfMatch(
            const_cast<rdfdb::rdf::RdfStore*>(&s), nullptr,
            "(?s <rdf:type> ?c)", {"top"}, {}, {}, "", options);
      });
      if (!result.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::printf("%8s %10s %10s %10s %10s %9s %9s %9s", "links", "insert/s",
              "intern/s", "match/s", "rows/s", "q_p50_us", "q_p95_us",
              "q_p99_us");
  if (mem) {
    std::printf(" %8s %8s %7s %6s", "heap_mb", "store_mb", "B/trip", "cpu%");
  }
  std::printf("\n");
  rdfdb::obs::MetricsSnapshot prev =
      rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
  int64_t prev_cpu = ProcessCpuNanos();
  for (int tick = 0; (ticks == 0 || tick < ticks) &&
                     !g_stop.load(std::memory_order_relaxed);
       ++tick) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    size_t live_triples = 0;
    if (mem) {
      // Refresh the mem_* gauges (and grab the live triple count) under
      // the same lock the writer mutates under, then snapshot.
      live_triples = store.WithReadLock([](const rdfdb::rdf::RdfStore& s) {
        s.UpdateMemoryGauges();
        return s.links().TotalTripleCount();
      });
    }
    rdfdb::obs::MetricsSnapshot cur =
        rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
    std::printf(
        "%8lld %10.0f %10.0f %10.0f %10.0f %9.0f %9.0f %9.0f",
        static_cast<long long>(cur.Counter("rdfdb_link_inserts_total")),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_link_inserts_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_value_inserts_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_query_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_query_rows_total"),
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.50) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.95) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.99) /
            1e3);
    if (mem) {
      const double store_bytes = StoreGaugeBytes(cur);
      const int64_t cpu = ProcessCpuNanos();
      std::printf(" %8.1f %8.1f %7.0f %6.0f",
                  static_cast<double>(rdfdb::obs::TrackedHeapBytes()) / 1e6,
                  store_bytes / 1e6,
                  live_triples == 0
                      ? 0.0
                      : store_bytes / static_cast<double>(live_triples),
                  static_cast<double>(cpu - prev_cpu) / 1e7 / interval);
      prev_cpu = cpu;
    }
    std::printf("\n");
    std::fflush(stdout);
    prev = std::move(cur);
  }

  g_stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader.join();
  if (recorder != nullptr) PrintHistorySparklines(*recorder);
  return 0;
}

int RunBulkloadMode(double interval, int ticks, int readers,
                    size_t triples, bool mem, bool history) {
  rdfdb::rdf::SnapshotRdfStore store;
  // Seed model: the readers' query target, loaded before the clock
  // starts so every match has rows.
  rdfdb::Status seeded = store.Apply([](rdfdb::rdf::RdfStore& live) {
    RDFDB_RETURN_NOT_OK(
        live.CreateRdfModel("top", "top_app", "triple").status());
    for (int i = 0; i < 256; ++i) {
      auto inserted = live.InsertTriple(
          "top", "<urn:s" + std::to_string(i) + ">", "<rdf:type>",
          "<urn:class" + std::to_string(i % 3) + ">");
      if (!inserted.ok()) return inserted.status();
    }
    return rdfdb::Status::OK();
  });
  if (!seeded.ok()) {
    std::fprintf(stderr, "seed: %s\n", seeded.ToString().c_str());
    return 1;
  }
  std::unique_ptr<rdfdb::obs::FlightRecorder> recorder;
  if (history) {
    recorder = StartHistoryRecorder(&store.metrics_registry(), interval);
  }

  // Readers: lock-free matches against pinned snapshots. A yield per
  // query keeps the single-core case fair to the writer.
  std::vector<std::thread> reader_threads;
  for (int t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&] {
      while (!g_stop.load(std::memory_order_relaxed)) {
        auto snap = store.Snapshot();
        rdfdb::query::MatchOptions options;
        options.limit = 128;
        auto result = rdfdb::query::SdoRdfMatch(
            snap.view(), "(?s <rdf:type> ?c)", {"top"}, {}, "", options);
        if (!result.ok()) break;
        std::this_thread::yield();
      }
    });
  }

  // Writer: chunked bulk load, one published version per chunk.
  std::thread writer([&] {
    constexpr size_t kChunk = 16384;
    uint64_t n = 0;
    rdfdb::Status created = store.CreateRdfModel("bulk", "bulk_app",
                                                 "triple")
                                .status();
    if (!created.ok()) {
      std::fprintf(stderr, "bulk model: %s\n", created.ToString().c_str());
      g_stop.store(true, std::memory_order_relaxed);
      return;
    }
    std::vector<rdfdb::rdf::NTriple> chunk;
    while (n < triples && !g_stop.load(std::memory_order_relaxed)) {
      chunk.clear();
      size_t end = std::min(n + kChunk, static_cast<uint64_t>(triples));
      for (; n < end; ++n) {
        std::string subject = "urn:b";
        subject += std::to_string(n);
        std::string predicate = "urn:p";
        predicate += std::to_string(n % 7);
        std::string value = "v";
        value += std::to_string(n);
        rdfdb::rdf::NTriple t;
        t.subject = rdfdb::rdf::Term::Uri(std::move(subject));
        t.predicate = rdfdb::rdf::Term::Uri(std::move(predicate));
        t.object = rdfdb::rdf::Term::PlainLiteral(std::move(value));
        chunk.push_back(std::move(t));
      }
      rdfdb::Status st = store.Apply([&](rdfdb::rdf::RdfStore& live) {
        return rdfdb::rdf::BulkLoad(&live, "bulk", chunk).status();
      });
      if (!st.ok()) {
        std::fprintf(stderr, "bulk load: %s\n", st.ToString().c_str());
        break;
      }
    }
    g_stop.store(true, std::memory_order_relaxed);
  });

  std::printf("%9s %10s %10s %9s %9s %9s %7s %8s %7s", "links",
              "insert/s", "match/s", "q_p50_us", "q_p95_us", "q_p99_us",
              "pub/s", "retired", "ep_lag");
  if (mem) {
    std::printf(" %8s %8s %7s %6s", "heap_mb", "store_mb", "B/trip", "cpu%");
  }
  std::printf("\n");
  rdfdb::obs::MetricsSnapshot prev =
      rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
  int64_t prev_cpu = ProcessCpuNanos();
  for (int tick = 0; (ticks == 0 || tick < ticks) &&
                     !g_stop.load(std::memory_order_relaxed);
       ++tick) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    size_t live_triples = 0;
    if (mem) {
      store.UpdateMemoryGauges();
      live_triples = store.Snapshot()->TotalTripleCount();
    }
    rdfdb::obs::MetricsSnapshot cur =
        rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
    std::printf(
        "%9lld %10.0f %10.0f %9.0f %9.0f %9.0f %7.0f %8lld %7lld",
        static_cast<long long>(cur.Counter("rdfdb_link_inserts_total")),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_link_inserts_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_query_total"),
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.50) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.95) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.99) /
            1e3,
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_versions_published_total"),
        static_cast<long long>(
            cur.Gauge("rdfdb_retired_versions_outstanding")),
        static_cast<long long>(cur.Gauge("rdfdb_oldest_pinned_epoch_lag")));
    if (mem) {
      const double store_bytes = StoreGaugeBytes(cur);
      const int64_t cpu = ProcessCpuNanos();
      std::printf(" %8.1f %8.1f %7.0f %6.0f",
                  static_cast<double>(rdfdb::obs::TrackedHeapBytes()) / 1e6,
                  store_bytes / 1e6,
                  live_triples == 0
                      ? 0.0
                      : store_bytes / static_cast<double>(live_triples),
                  static_cast<double>(cpu - prev_cpu) / 1e7 / interval);
      prev_cpu = cpu;
    }
    std::printf("\n");
    std::fflush(stdout);
    prev = std::move(cur);
  }

  g_stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& thread : reader_threads) thread.join();
  if (recorder != nullptr) PrintHistorySparklines(*recorder);
  return 0;
}

}  // namespace
