// rdfdb_top: a `top`-style live view of one store's instrument rates.
//
//   rdfdb_top [--interval <sec>] [--ticks <n>]
//
// Runs an in-process workload over a ConcurrentRdfStore — one writer
// inserting triples, one reader issuing SDO_RDF_MATCH — and prints one
// line per interval from metrics-registry snapshot deltas: insert,
// intern, and match rates plus per-interval query latency quantiles.
// --ticks bounds the run (default 10; 0 = until interrupted).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics_snapshot.h"
#include "query/match.h"
#include "rdf/concurrent_store.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  double interval = 1.0;
  int ticks = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--ticks") == 0 && i + 1 < argc) {
      ticks = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: rdfdb_top [--interval <sec>] [--ticks <n>]\n");
      return 2;
    }
  }
  if (interval <= 0.0) interval = 1.0;

  rdfdb::rdf::ConcurrentRdfStore store;
  auto created = store.CreateRdfModel("top", "top_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Writer: a stream of fresh triples (every subject also gets a type
  // triple so queries have shape to join on).
  std::thread writer([&] {
    uint64_t n = 0;
    while (!g_stop.load(std::memory_order_relaxed)) {
      const std::string subject = "<urn:s" + std::to_string(n) + ">";
      auto inserted = store.InsertTriple(
          "top", subject, "<urn:p" + std::to_string(n % 7) + ">",
          "\"v" + std::to_string(n) + "\"");
      if (!inserted.ok()) break;
      inserted = store.InsertTriple(
          "top", subject, "<rdf:type>",
          "<urn:class" + std::to_string(n % 3) + ">");
      if (!inserted.ok()) break;
      ++n;
    }
  });

  // Reader: repeated matches under the shared lock.
  std::thread reader([&] {
    while (!g_stop.load(std::memory_order_relaxed)) {
      auto result = store.WithReadLock([](const rdfdb::rdf::RdfStore& s) {
        rdfdb::query::MatchOptions options;
        options.limit = 128;
        return rdfdb::query::SdoRdfMatch(
            const_cast<rdfdb::rdf::RdfStore*>(&s), nullptr,
            "(?s <rdf:type> ?c)", {"top"}, {}, {}, "", options);
      });
      if (!result.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::printf("%8s %10s %10s %10s %10s %9s %9s %9s\n", "links", "insert/s",
              "intern/s", "match/s", "rows/s", "q_p50_us", "q_p95_us",
              "q_p99_us");
  rdfdb::obs::MetricsSnapshot prev =
      rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
  for (int tick = 0; (ticks == 0 || tick < ticks) &&
                     !g_stop.load(std::memory_order_relaxed);
       ++tick) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    rdfdb::obs::MetricsSnapshot cur =
        rdfdb::obs::TakeMetricsSnapshot(store.metrics_registry());
    std::printf(
        "%8lld %10.0f %10.0f %10.0f %10.0f %9.0f %9.0f %9.0f\n",
        static_cast<long long>(cur.Counter("rdfdb_link_inserts_total")),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_link_inserts_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_value_inserts_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_query_total"),
        rdfdb::obs::CounterRate(prev, cur, "rdfdb_query_rows_total"),
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.50) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.95) /
            1e3,
        rdfdb::obs::IntervalQuantile(prev, cur, "rdfdb_query_ns", 0.99) /
            1e3);
    std::fflush(stdout);
    prev = std::move(cur);
  }

  g_stop.store(true, std::memory_order_relaxed);
  writer.join();
  reader.join();
  return 0;
}
