#!/usr/bin/env bash
# ThreadSanitizer job for the concurrency-sensitive targets: the
# pipelined bulk loader, the concurrent store wrapper, the snapshot
# store (epoch-pinned lock-free readers vs the publishing writer,
# hammered at several reader counts), the metrics instruments
# (relaxed-atomic counters hammered from many threads while the
# registry renders), the parallel join executor's differential
# tests (which exercise the chunked worker/consumer pipeline — and the
# compressed posting-cursor / galloping leaf scans — at several thread
# counts), and the codec round-trip/fuzz tests (snapshot readers decode
# posting blocks and front-coded packs concurrently with the writer,
# so the decoders themselves belong in this job too). Builds a
# dedicated build-tsan tree (so a normal
# build/ is left untouched) and runs the test binaries directly; any
# TSan report fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRDFDB_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_bulk_load test_concurrent_store test_snapshot_store \
  test_metrics test_codec \
  test_exec_diff test_event_log test_span_timeline test_slow_query_log \
  test_resource_tracker test_profiler test_memory_accounting \
  test_flight_recorder test_cancel test_server

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR"/tests/test_bulk_load
"$BUILD_DIR"/tests/test_concurrent_store
"$BUILD_DIR"/tests/test_snapshot_store
"$BUILD_DIR"/tests/test_metrics
"$BUILD_DIR"/tests/test_codec
"$BUILD_DIR"/tests/test_exec_diff
"$BUILD_DIR"/tests/test_event_log
"$BUILD_DIR"/tests/test_span_timeline
"$BUILD_DIR"/tests/test_slow_query_log
"$BUILD_DIR"/tests/test_resource_tracker
"$BUILD_DIR"/tests/test_memory_accounting
# The seqlock'd active-op table and the sampler-vs-guard interplay are
# exactly TSan territory (relaxed field loads behind the seq protocol
# are intentional; the suppressions-free run must still be clean).
"$BUILD_DIR"/tests/test_flight_recorder
# backtrace(3) inside the SIGPROF handler is flagged by TSan's
# signal-unsafe-call check; it is async-signal-safe on glibc once primed
# (see obs/profiler.cc), so suppress only that check for this binary.
TSAN_OPTIONS="report_signal_unsafe=0 $TSAN_OPTIONS" \
  "$BUILD_DIR"/tests/test_profiler
# The serving path end to end: cooperative cancellation racing the
# parallel executor's worker/consumer pipeline (test_cancel) and the
# acceptor/admission-queue/worker-pool/watcher threads of the network
# front-end, including mid-flight SIGTERM drain (test_server).
"$BUILD_DIR"/tests/test_cancel
"$BUILD_DIR"/tests/test_server

echo "TSan run clean."
