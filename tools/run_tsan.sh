#!/usr/bin/env bash
# ThreadSanitizer job for the concurrency-sensitive targets: the
# pipelined bulk loader and the concurrent store wrapper. Builds a
# dedicated build-tsan tree (so a normal build/ is left untouched) and
# runs the two test binaries directly; any TSan report fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRDFDB_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_bulk_load test_concurrent_store

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR"/tests/test_bulk_load
"$BUILD_DIR"/tests/test_concurrent_store

echo "TSan run clean."
