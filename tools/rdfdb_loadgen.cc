// rdfdb_loadgen: closed-loop load generator for rdfdb_serve.
//
//   rdfdb_loadgen --port <n> [--host <h>] [--concurrency <n>]
//                 [--duration-ms <n>] [--deadline-ms <n>]
//                 [--query <target>] [--insert-fraction <f>]
//                 [--insert-model <m>] [--json]
//
// Each of --concurrency worker threads issues one request, waits for
// the complete response, and immediately issues the next; concurrency
// is the offered-load knob. Prints a one-line summary (or JSON with
// --json): qps over served requests, p50/p90/p95/p99 latency, and the
// 503-shed / 504-deadline counts the server used to protect itself.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/loadgen.h"

int main(int argc, char** argv) {
  rdfdb::server::LoadGenOptions options;
  options.query_target = "/query?q=(%3Fs%20%3Fp%20%3Fo)&model=m&limit=64";
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--concurrency") == 0 && i + 1 < argc) {
      options.concurrency = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      options.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      options.query_target = argv[++i];
    } else if (std::strcmp(argv[i], "--insert-fraction") == 0 &&
               i + 1 < argc) {
      options.insert_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--insert-model") == 0 && i + 1 < argc) {
      options.insert_model = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  auto stats = rdfdb::server::RunLoadGen(options);
  if (!stats.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              json ? stats->ToJson().c_str() : stats->ToString().c_str());
  return 0;
}
