// rdf_shell: a small command-line front end over the library — the kind
// of tool a downstream user builds first. Subcommand style:
//
//   rdf_shell load  <model> <file.nt>       load N-Triples into a model
//   rdf_shell quads <model> <file.nt>       load, converting reification
//                                           quads to the streamlined form
//   rdf_shell query <model> '<patterns>' [filter]
//                                           run SDO_RDF_MATCH
//   rdf_shell export <model> <file.nt>      dump a model
//   rdf_shell stats <model>                 per-model statistics
//   rdf_shell demo                          run a built-in demo script
//
// State persists across invocations in rdfshell.snapshot (created on
// first use in the working directory).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/quad_loader.h"
#include "rdf/rdf_store.h"

namespace {

constexpr const char* kSnapshotPath = "rdfshell.snapshot";

using rdfdb::rdf::RdfStore;

std::unique_ptr<RdfStore> OpenStore() {
  if (FILE* f = std::fopen(kSnapshotPath, "rb")) {
    std::fclose(f);
    auto opened = RdfStore::Open(kSnapshotPath);
    if (opened.ok()) return std::move(opened).value();
    std::fprintf(stderr, "warning: snapshot unreadable (%s); starting "
                 "fresh\n",
                 opened.status().ToString().c_str());
  }
  return std::make_unique<RdfStore>();
}

bool SaveStore(const RdfStore& store) {
  rdfdb::Status st = store.Save(kSnapshotPath);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

/// Create the model if it does not exist yet.
bool EnsureModel(RdfStore* store, const std::string& model) {
  if (store->GetModelId(model).ok()) return true;
  auto created = store->CreateRdfModel(model, model + "_app", "triple");
  if (!created.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 created.status().ToString().c_str());
    return false;
  }
  return true;
}

int CmdLoad(const std::string& model, const std::string& path,
            bool convert_quads) {
  auto store = OpenStore();
  if (!EnsureModel(store.get(), model)) return 1;
  if (convert_quads) {
    rdfdb::rdf::QuadLoader loader(store.get(), {});
    auto stats = loader.LoadFile(model, path);
    if (!stats.ok()) {
      std::fprintf(stderr, "load: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu statements read; %zu quads converted to streamlined "
                "reification, %zu incomplete quads handled, %zu "
                "assertions rewritten, %zu plain triples\n",
                stats->input_triples, stats->complete_quads,
                stats->incomplete_quads, stats->assertions_rewritten,
                stats->plain_triples);
  } else {
    auto stats = rdfdb::rdf::BulkLoadFile(store.get(), model, path);
    if (!stats.ok()) {
      std::fprintf(stderr, "load: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu statements read; %zu new triples, %zu duplicates\n",
                stats->statements, stats->new_links, stats->reused_links);
  }
  return SaveStore(*store) ? 0 : 1;
}

int CmdQuery(const std::string& model, const std::string& patterns,
             const std::string& filter) {
  auto store = OpenStore();
  rdfdb::query::InferenceEngine engine(store.get());
  auto result = rdfdb::query::SdoRdfMatch(store.get(), &engine, patterns,
                                          {model}, {}, {}, filter);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("(%zu rows)\n", result->row_count());
  return 0;
}

int CmdExport(const std::string& model, const std::string& path) {
  auto store = OpenStore();
  rdfdb::Status st = rdfdb::rdf::ExportModelToFile(*store, model, path);
  if (!st.ok()) {
    std::fprintf(stderr, "export: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("exported model %s to %s\n", model.c_str(), path.c_str());
  return 0;
}

int CmdStats(const std::string& model) {
  auto store = OpenStore();
  auto stats = store->GetModelStats(model);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("model %s\n", model.c_str());
  std::printf("  triples             %zu\n", stats->triples);
  std::printf("  distinct subjects   %zu\n", stats->distinct_subjects);
  std::printf("  distinct predicates %zu\n", stats->distinct_predicates);
  std::printf("  distinct objects    %zu\n", stats->distinct_objects);
  std::printf("  reified statements  %zu\n", stats->reified_statements);
  std::printf("  implied statements  %zu\n", stats->implied_statements);
  rdfdb::Status ok = store->CheckConsistency();
  std::printf("  consistency         %s\n",
              ok.ok() ? "OK" : ok.ToString().c_str());
  return 0;
}

int CmdDemo() {
  std::remove(kSnapshotPath);
  auto store = std::make_unique<RdfStore>();
  if (!EnsureModel(store.get(), "demo")) return 1;
  const char* triples[][3] = {
      {"http://ex/alice", "http://ex/knows", "http://ex/bob"},
      {"http://ex/bob", "http://ex/knows", "http://ex/carol"},
      {"http://ex/alice", "http://ex/age", "\"34\"^^xsd:int"},
  };
  for (const auto& t : triples) {
    auto inserted = store->InsertTriple("demo", t[0], t[1], t[2]);
    if (!inserted.ok()) return 1;
  }
  auto base = store->GetTripleId("demo", "http://ex/alice",
                                 "http://ex/knows", "http://ex/bob");
  if (base.ok()) {
    (void)store->AssertAboutTriple("demo", "http://ex/census",
                                   "http://ex/source", *base);
  }
  if (!SaveStore(*store)) return 1;
  std::printf("demo model written to %s — try:\n", kSnapshotPath);
  std::printf("  rdf_shell stats demo\n");
  std::printf("  rdf_shell query demo '(?s <http://ex/knows> ?o)'\n");
  std::printf("  rdf_shell export demo demo.nt\n");
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rdf_shell load <model> <file.nt>\n"
               "  rdf_shell quads <model> <file.nt>\n"
               "  rdf_shell query <model> '<patterns>' [filter]\n"
               "  rdf_shell export <model> <file.nt>\n"
               "  rdf_shell stats <model>\n"
               "  rdf_shell demo\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "demo") return CmdDemo();
  if (cmd == "load" && argc == 4) return CmdLoad(argv[2], argv[3], false);
  if (cmd == "quads" && argc == 4) return CmdLoad(argv[2], argv[3], true);
  if (cmd == "query" && (argc == 4 || argc == 5)) {
    return CmdQuery(argv[2], argv[3], argc == 5 ? argv[4] : "");
  }
  if (cmd == "export" && argc == 4) return CmdExport(argv[2], argv[3]);
  if (cmd == "stats" && argc == 3) return CmdStats(argv[2]);
  Usage();
  return 2;
}
