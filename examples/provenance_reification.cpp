// Streamlined reification walkthrough (§5, Figure 7).
//
// Demonstrates the three reification/assertion constructors:
//   SDO_RDF_TRIPLE_S(model, rdf_t_id)                      — reify
//   SDO_RDF_TRIPLE_S(model, s, p, rdf_t_id)                — assert about
//   SDO_RDF_TRIPLE_S(model, rs, rp, s, p, o)               — assert implied
// plus IS_REIFIED, direct (D) vs implied (I) contexts, and dereferencing
// the DBUri back to the reified row.

#include <cstdio>

#include "rdf/reification.h"
#include "rdf/rdf_store.h"

using rdfdb::rdf::RdfStore;
using rdfdb::rdf::SdoRdfTripleS;

namespace {

void ShowContext(const RdfStore& store, rdfdb::rdf::LinkId link_id,
                 const char* label) {
  auto row = store.links().Get(link_id);
  if (!row.ok()) return;
  std::printf("  %s: LINK_ID=%lld CONTEXT=%c REIF_LINK=%c COST=%lld\n",
              label, static_cast<long long>(link_id),
              static_cast<char>(row->context), row->reif_link ? 'Y' : 'N',
              static_cast<long long>(row->cost));
}

}  // namespace

int main() {
  RdfStore store;
  if (!store.CreateRdfModel("cia", "ciadata", "triple").ok()) return 1;

  // A direct triple — a fact.
  auto base = store.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                 "id:JohnDoe");
  if (!base.ok()) return 1;
  std::printf("inserted fact <gov:files, gov:terrorSuspect, id:JohnDoe>\n");
  ShowContext(store, base->rdf_t_id(), "base triple");

  // Constructor 2: reify by RDF_T_ID. One new triple is stored:
  // <DBUri, rdf:type, rdf:Statement>.
  auto reif = store.ReifyTriple("cia", base->rdf_t_id());
  if (!reif.ok()) return 1;
  std::printf("\nreified via %s\n",
              rdfdb::rdf::DBUriForLink(base->rdf_t_id()).c_str());
  ShowContext(store, reif->rdf_t_id(), "reification triple");

  auto is_reified = store.IsReified("cia", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
  std::printf("IS_REIFIED -> %s\n",
              is_reified.ok() && *is_reified ? "true" : "false");

  // Constructor 3: assertion about the reified triple — Figure 7's
  // "MI5 said <gov:files, gov:terrorSuspect, id:JohnDoe>".
  auto mi5 = store.AssertAboutTriple("cia", "gov:MI5", "gov:source",
                                     base->rdf_t_id());
  if (!mi5.ok()) return 1;
  auto mi5_triple = mi5->GetTriple();
  std::printf("\nassertion: %s\n", mi5_triple->ToString().c_str());

  // Constructor with six arguments: assert an *implied* statement —
  // §5.2's "Interpol said that JohnDoeJr is a terrorSuspect".
  auto interpol = store.AssertImplied("cia", "gov:Interpol", "gov:source",
                                      "gov:files", "gov:terrorSuspect",
                                      "id:JohnDoeJr");
  if (!interpol.ok()) return 1;
  auto implied_link =
      rdfdb::rdf::LinkIdFromDBUri(*interpol->GetObject()).value();
  std::printf("\nimplied statement asserted by Interpol:\n");
  ShowContext(store, implied_link, "implied base");

  // Entering the implied triple as a fact upgrades CONTEXT I -> D.
  if (!store.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                          "id:JohnDoeJr")
           .ok()) {
    return 1;
  }
  std::printf("\nafter inserting the same triple as a fact:\n");
  ShowContext(store, implied_link, "upgraded base");

  // Dereference the DBUri through the XML DB resolver.
  auto uri = rdfdb::dburi::Parse(
      rdfdb::rdf::DBUriForLink(base->rdf_t_id()));
  if (uri.ok()) {
    auto row = store.resolver().FetchRow(*uri);
    if (row.ok()) {
      std::printf("\nDBUri dereferences to rdf_link$ row: LINK_ID=%lld "
                  "MODEL_ID=%lld\n",
                  static_cast<long long>((*row)[0].as_int64()),
                  static_cast<long long>((*row)[9].as_int64()));
    }
  }

  // Storage accounting: the streamlined scheme stored one triple per
  // reification; the classic quad would have stored four.
  std::printf("\ncentral schema: %zu triples total (fact + implied-"
              "upgraded base + 2 reifications + 2 assertions)\n",
              store.links().TotalTripleCount());
  return 0;
}
