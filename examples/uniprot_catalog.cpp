// UniProt-style catalogue (§7.1): generate a synthetic protein dataset,
// load it through the SDO_RDF_TRIPLE_S constructor path with the §7.2
// function-based indexes, run the paper's probe queries, and then
// analyze the RDF data *as a network* with the NDM functions —
// the capability the paper gets for free by storing triples as NDM
// links.

#include <cstdio>

#include "common/timer.h"
#include "gen/uniprot_gen.h"
#include "gen/workload.h"
#include "ndm/analysis.h"
#include "rdf/app_table.h"
#include "rdf/rdf_store.h"
#include "rdf/vocab.h"

using rdfdb::gen::GenerateUniProt;
using rdfdb::gen::UniProtOptions;
using rdfdb::rdf::RdfStore;

int main(int argc, char** argv) {
  UniProtOptions options;
  options.target_triples = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                    : 20000;
  std::printf("generating ~%zu UniProt-like triples...\n",
              options.target_triples);
  auto dataset = GenerateUniProt(options);
  std::printf("  %zu triples, %zu reified statements (%.2f%%)\n",
              dataset.triple_count(), dataset.reified_count(),
              100.0 * static_cast<double>(dataset.reified_count()) /
                  static_cast<double>(dataset.triple_count()));

  RdfStore store;
  rdfdb::Timer timer;
  auto load = rdfdb::gen::LoadUniProtIntoOracle(&store, "uniprot",
                                                "uniprot_app", dataset);
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded model '%s' in %.2fs: %zu app rows, %zu distinct "
              "values, %zu links\n",
              load->model.model_name.c_str(),
              static_cast<double>(timer.ElapsedNanos()) * 1e-9,
              load->app_rows, store.values().value_count(),
              store.links().TotalTripleCount());

  // The store's own instruments saw the same load.
  const rdfdb::obs::StoreMetrics* metrics = store.metrics();
  std::printf("store metrics: %llu value lookups, %llu value inserts, "
              "%llu link inserts, %llu duplicates folded\n\n",
              static_cast<unsigned long long>(
                  metrics->value_lookups->Value()),
              static_cast<unsigned long long>(
                  metrics->value_inserts->Value()),
              static_cast<unsigned long long>(
                  metrics->link_inserts->Value()),
              static_cast<unsigned long long>(
                  metrics->link_duplicates->Value()));

  // --- the paper's subject query (Figure 10) -----------------------------
  auto table = rdfdb::rdf::ApplicationTable::Attach(&store, "UP",
                                                    "uniprot_app");
  if (!table.ok()) return 1;
  auto hits = table->FindBySubject(rdfdb::gen::kProbeSubject);
  std::printf("SELECT ... WHERE GET_SUBJECT() = '%s' -> %zu rows\n",
              rdfdb::gen::kProbeSubject, hits.size());
  for (size_t i = 0; i < hits.size() && i < 5; ++i) {
    auto full = hits[i].GetTriple();
    if (full.ok()) std::printf("  %s\n", full->ToString().c_str());
  }
  if (hits.size() > 5) std::printf("  ... (%zu more)\n", hits.size() - 5);

  // --- the paper's IS_REIFIED probes (Figure 11) -------------------------
  auto reified_true = store.IsReified(
      "uniprot", rdfdb::gen::kProbeSubject,
      std::string(rdfdb::rdf::kRdfsSeeAlso), rdfdb::gen::kProbeReifiedTarget);
  auto reified_false = store.IsReified(
      "uniprot", rdfdb::gen::kProbeSubject,
      std::string(rdfdb::rdf::kRdfsSeeAlso),
      rdfdb::gen::kProbeUnreifiedTarget);
  std::printf("\nIS_REIFIED(P93259, seeAlso, SM00101) = %s\n",
              reified_true.ok() && *reified_true ? "true" : "false");
  std::printf("IS_REIFIED(P93259, seeAlso, PF99999) = %s\n",
              reified_false.ok() && *reified_false ? "true" : "false");

  // --- NDM network analysis over the RDF graph ---------------------------
  const rdfdb::ndm::LogicalNetwork& net = store.network();
  std::printf("\nNDM logical network: %zu nodes, %zu links, %zu weak "
              "components\n",
              net.node_count(), net.link_count(),
              rdfdb::ndm::ConnectedComponentCount(net));

  auto probe_id = store.values().Lookup(
      rdfdb::rdf::Term::Uri(rdfdb::gen::kProbeSubject));
  if (probe_id.has_value()) {
    auto within =
        rdfdb::ndm::WithinCost(net, *probe_id, 2.0,
                               rdfdb::ndm::Direction::kBoth);
    std::printf("nodes within 2 hops of the probe protein: %zu\n",
                within.size());
    auto nn = rdfdb::ndm::NearestNeighbors(net, *probe_id, 5,
                                           rdfdb::ndm::Direction::kBoth);
    std::printf("5 nearest neighbours:\n");
    for (const auto& [node, cost] : nn) {
      auto text = store.TextForValueId(node);
      std::printf("  cost %.0f  %s\n", cost,
                  text.ok() ? text->c_str() : "?");
    }
    // Two proteins citing the same domain are 2 hops apart undirected.
    auto other = store.values().Lookup(rdfdb::rdf::Term::Uri(
        "urn:lsid:uniprot.org:uniprot:P00001"));
    if (other.has_value()) {
      auto path = rdfdb::ndm::ShortestPathByHops(
          net, *probe_id, *other, rdfdb::ndm::Direction::kBoth);
      if (path.found) {
        std::printf("path probe -> P00001: %zu hops through shared "
                    "resources\n",
                    path.links.size());
      }
    }
  }
  return 0;
}
