// The Intelligence Community scenario (Figures 2, 6 and 8).
//
// Three agencies (CIA, DHS, FBI) keep separate RDF models in one central
// schema; a rulebase (intel_rb: anyone who performs 'bombing' is a
// terror suspect) plus the RDFS rulebase are pre-computed into a rules
// index; SDO_RDF_MATCH reasons over all three models at once and the
// result is joined to the relational ic.address table — reproducing the
// paper's terror-watch-list query output.

#include <cstdio>
#include <set>

#include "gen/ic_dataset.h"
#include "query/match.h"

using rdfdb::gen::BuildIcScenario;
using rdfdb::gen::IcScenario;
using rdfdb::query::InferenceEngine;
using rdfdb::query::Rule;
using rdfdb::query::SdoRdfMatch;

int main() {
  rdfdb::rdf::RdfStore store;

  auto scenario = BuildIcScenario(&store);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded models:");
  for (const std::string& name : store.ModelNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("  (central schema: %zu triples, %zu values)\n\n",
              store.links().TotalTripleCount(),
              store.values().value_count());

  // -- create rulebase ---------------------------------------------------
  InferenceEngine engine(&store);
  if (!engine.CreateRulebase("intel_rb").ok()) return 1;

  // -- insert rule into rulebase ------------------------------------------
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario->aliases;
  if (!engine.InsertRule("intel_rb", rule).ok()) return 1;
  std::printf("rulebase intel_rb: anyone who performs 'bombing' is a "
              "terror suspect\n");

  // -- create rules index ---------------------------------------------------
  auto index = engine.CreateRulesIndex("rdfs_rix_intel",
                                       {"cia", "dhs", "fbi"},
                                       {"RDFS", "intel_rb"});
  if (!index.ok()) {
    std::fprintf(stderr, "rules index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("rules index rdfs_rix_intel pre-computed %zu triples in %zu "
              "rounds\n\n",
              (*index)->inferred_count(), (*index)->rounds());

  // -- query IC databases ---------------------------------------------------
  auto result = SdoRdfMatch(&store, &engine,
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"},
                            scenario->aliases, "");
  if (!result.ok()) {
    std::fprintf(stderr, "match: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Join to ic.address and print the paper's output table.
  std::printf("TERROR_WATCH_LIST      LOCATION\n");
  std::printf("------------------     --------------------\n");
  const rdfdb::storage::Index* addr_index =
      scenario->address_table->GetIndex("addr_name_idx");
  std::set<std::string> printed;
  for (size_t i = 0; i < result->row_count(); ++i) {
    std::string name = result->Get(i, "name");
    if (!printed.insert(name).second) continue;  // SELECT DISTINCT
    for (rdfdb::storage::RowId rid :
         addr_index->Find({rdfdb::storage::Value::String(name)})) {
      const rdfdb::storage::Row& row = *scenario->address_table->Get(rid);
      // Shorten the namespace back to the paper's id: prefix for output.
      std::string display = name;
      const std::string kIdNs = rdfdb::gen::kIdNs;
      if (display.rfind(kIdNs, 0) == 0) {
        display = "id:" + display.substr(kIdNs.size());
      }
      std::printf("%-22s %s\n", display.c_str(),
                  row[1].as_string().c_str());
    }
  }
  return 0;
}
