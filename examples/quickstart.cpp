// Quickstart: the paper's three-step application recipe (§4.3).
//
//   1. CREATE TABLE ciadata (id NUMBER, triple SDO_RDF_TRIPLE_S);
//   2. EXECUTE SDO_RDF.CREATE_RDF_MODEL('cia', 'ciadata', 'triple');
//   3. INSERT INTO ciadata VALUES (1, SDO_RDF_TRIPLE_S('cia',
//        'gov:files', 'gov:terrorSuspect', 'id:JohnDoe'));
//
// ...followed by the member-function queries of §6.

#include <cstdio>

#include "rdf/app_table.h"
#include "rdf/rdf_store.h"

using rdfdb::rdf::ApplicationTable;
using rdfdb::rdf::RdfStore;
using rdfdb::rdf::SdoRdfTripleS;

int main() {
  RdfStore store;

  // Step 1: create the application table with the RDF object column.
  auto table = ApplicationTable::Create(&store, "APP", "ciadata");
  if (!table.ok()) {
    std::fprintf(stderr, "create table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  // Step 2: create the model (this also creates the rdfm_cia view).
  auto model = store.CreateRdfModel("cia", "ciadata", "triple");
  if (!model.ok()) {
    std::fprintf(stderr, "create model: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("created model '%s' with MODEL_ID %lld\n",
              model->model_name.c_str(),
              static_cast<long long>(model->model_id));

  // Step 3: insert triples through the SDO_RDF_TRIPLE_S constructor.
  // (The paper abbreviates gov:/id: — full namespaces belong in real
  // data; the parser accepts both.)
  struct Row {
    int64_t id;
    const char *s, *p, *o;
  };
  const Row rows[] = {
      {1, "http://www.us.gov#files", "http://www.us.gov#terrorSuspect",
       "http://www.us.id#JohnDoe"},
      {2, "http://www.us.gov#files", "http://www.us.gov#terrorSuspect",
       "http://www.us.id#JaneDoe"},
      {3, "http://www.us.id#JohnDoe", "http://www.us.gov#knows",
       "http://www.us.id#JaneDoe"},
  };
  for (const Row& row : rows) {
    auto triple = store.InsertTriple("cia", row.s, row.p, row.o);
    if (!triple.ok()) {
      std::fprintf(stderr, "insert: %s\n",
                   triple.status().ToString().c_str());
      return 1;
    }
    if (!table->Insert(row.id, *triple).ok()) return 1;
    std::printf("row %lld -> SDO_RDF_TRIPLE_S(%lld, %lld, %lld, %lld, %lld)\n",
                static_cast<long long>(row.id),
                static_cast<long long>(triple->rdf_t_id()),
                static_cast<long long>(triple->rdf_m_id()),
                static_cast<long long>(triple->rdf_s_id()),
                static_cast<long long>(triple->rdf_p_id()),
                static_cast<long long>(triple->rdf_o_id()));
  }

  // Query with the member functions (§6) through a function-based
  // index (§7.2).
  if (!table->CreateSubjectIndex().ok()) return 1;
  std::printf("\nSELECT triple.GET_TRIPLE() WHERE GET_SUBJECT() = "
              "gov:files\n");
  for (const SdoRdfTripleS& triple :
       table->FindBySubject("http://www.us.gov#files")) {
    auto full = triple.GetTriple();
    if (full.ok()) std::printf("  %s\n", full->ToString().c_str());
  }

  // IS_TRIPLE / IS_REIFIED round out the SDO_RDF package surface.
  auto is_triple =
      store.IsTriple("cia", "http://www.us.gov#files",
                     "http://www.us.gov#terrorSuspect",
                     "http://www.us.id#JohnDoe");
  std::printf("\nIS_TRIPLE(files, terrorSuspect, JohnDoe) = %s\n",
              is_triple.ok() && *is_triple ? "TRUE" : "FALSE");

  std::printf("central schema now holds %zu triples over %zu values\n",
              store.links().TotalTripleCount(),
              store.values().value_count());
  return 0;
}
